//! The MW worker pool: real OS threads fed over channels, with supervision.
//!
//! This is the in-process substitute for the paper's MPI-connected worker
//! ranks (see DESIGN.md, substitutions): the master submits jobs, workers
//! execute them, and results return over a per-job channel — structurally
//! the send/recv pattern of the original `MWRMComm` layer. Tasks and workers
//! never communicate with each other, only with the master, exactly as in
//! §3.1.
//!
//! The pool is *supervised* (DESIGN.md §9): every worker slot carries a
//! liveness flag armed by an RAII guard on the worker thread, so a worker
//! that panics or is reclaimed mid-job (the paper's §4.2 Condor scenario) is
//! detected by [`MwPool::supervise`], which joins the corpse and respawns a
//! fresh worker into the slot while a respawn budget remains. A lost job is
//! never silent: its result channel disconnects and the caller's
//! [`JobHandle`] reports [`WorkerLost`] instead of hanging or panicking.
//! When the budget is exhausted and every worker is dead the pool marks
//! itself failed, drains the queue (erroring every pending handle), and all
//! further submissions fail fast — callers degrade gracefully rather than
//! wedge.

use crate::faults::{FaultPlan, WorkerFault};
use crate::resilience::BackoffPolicy;
use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use obs::{Counter, Gauge, MetricsRegistry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unit of work: called with the worker's slot index and a flag telling it
/// to discard (not send) its result — the fault injector's lost-message case.
type Job = Box<dyn FnOnce(usize, bool) + Send + 'static>;

/// Per-worker execution counters.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Jobs executed by this worker.
    pub jobs: AtomicU64,
    /// Total busy time in nanoseconds.
    pub busy_nanos: AtomicU64,
    /// Total idle time (blocked waiting for work) in nanoseconds.
    pub idle_nanos: AtomicU64,
}

/// Registry handles mirrored by the pool when one is attached at
/// construction ([`MwPool::with_metrics`]). Metric names:
/// `mw.pool.jobs_submitted`, `mw.pool.queue_depth_hwm`,
/// `mw.pool.workers_lost`, `mw.pool.respawns`, and per worker `w`
/// `mw.pool.worker{w}.{jobs,busy_nanos,idle_nanos}`.
struct PoolObs {
    jobs_submitted: Arc<Counter>,
    queue_depth_hwm: Arc<Gauge>,
    workers_lost: Arc<Counter>,
    respawns: Arc<Counter>,
    worker_jobs: Vec<Arc<Counter>>,
    worker_busy_nanos: Vec<Arc<Counter>>,
    worker_idle_nanos: Vec<Arc<Counter>>,
}

impl PoolObs {
    fn register(registry: &MetricsRegistry, n_workers: usize) -> Self {
        PoolObs {
            jobs_submitted: registry.counter("mw.pool.jobs_submitted"),
            queue_depth_hwm: registry.gauge("mw.pool.queue_depth_hwm"),
            workers_lost: registry.counter("mw.pool.workers_lost"),
            respawns: registry.counter("mw.pool.respawns"),
            worker_jobs: (0..n_workers)
                .map(|w| registry.counter(&format!("mw.pool.worker{w}.jobs")))
                .collect(),
            worker_busy_nanos: (0..n_workers)
                .map(|w| registry.counter(&format!("mw.pool.worker{w}.busy_nanos")))
                .collect(),
            worker_idle_nanos: (0..n_workers)
                .map(|w| registry.counter(&format!("mw.pool.worker{w}.idle_nanos")))
                .collect(),
        }
    }
}

/// Wakes masters blocked in a batch wait whenever something that can change
/// a pending [`JobHandle`]'s outcome happens: a job finishes (result sent
/// *or* dropped), a worker dies, or the failed-pool drain discards queued
/// jobs. Callers snapshot [`generation`](CompletionNotifier::generation)
/// *before* scanning their handles, then [`wait`](CompletionNotifier::wait)
/// on that snapshot — a completion racing the scan bumps past the snapshot
/// and the wait returns immediately, so no wakeup is ever lost.
// Mutex<u64> + Condvar is the textbook generation counter for parking
// waiters; an atomic (what clippy::mutex_integer suggests) cannot pair with
// a condvar's wait/notify.
#[allow(clippy::mutex_integer)]
pub(crate) struct CompletionNotifier {
    generation: Mutex<u64>,
    cond: Condvar,
}

impl CompletionNotifier {
    fn new() -> Self {
        CompletionNotifier {
            generation: Mutex::new(0),
            cond: Condvar::new(),
        }
    }

    /// Poison-proof lock: a waiter must keep waking even if a panicking
    /// thread poisoned the counter mid-bump.
    fn lock(&self) -> MutexGuard<'_, u64> {
        match self.generation.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The current completion generation.
    pub(crate) fn generation(&self) -> u64 {
        *self.lock()
    }

    /// Record a completion event and wake every waiter.
    fn bump(&self) {
        let mut g = self.lock();
        *g = g.wrapping_add(1);
        drop(g);
        self.cond.notify_all();
    }

    /// Block until the generation advances past `seen` or `timeout`
    /// elapses, whichever comes first (spurious wakeups re-wait only for
    /// the remainder).
    pub(crate) fn wait(&self, seen: u64, timeout: Duration) {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.lock();
        while *g == seen {
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return;
            };
            let (guard, _) = match self.cond.wait_timeout(g, remaining) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            g = guard;
        }
    }
}

/// The worker executing a job died (or panicked) before reporting a result.
///
/// In the paper's deployment this is the Condor-style opportunistic case:
/// a worker node is reclaimed mid-task and the master must reassign the
/// work (§4.2, "When a worker is restarted by the master...").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLost;

impl std::fmt::Display for WorkerLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MW worker died before reporting its result")
    }
}

impl std::error::Error for WorkerLost {}

/// How a master-side caller re-dispatches work lost to worker failure.
///
/// Used by `ThreadedBackend` (and available to any pool client): an attempt
/// that ends in [`WorkerLost`] — or exceeds `timeout` — is re-submitted, up
/// to `max_attempts` total tries, sleeping an exponentially growing
/// `backoff` between tries. Because retried jobs are re-created from
/// master-side state (cloned streams carrying their RNG), a retry reproduces
/// the lost result bit for bit; see DESIGN.md §9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries per job, including the first (≥ 1).
    pub max_attempts: u32,
    /// Per-attempt wall-clock limit; `None` waits indefinitely (supervision
    /// still detects dead workers, so only a *slow* worker prolongs the
    /// wait, and slowness does not corrupt results).
    pub timeout: Option<Duration>,
    /// Base sleep between attempts, doubled each further attempt. Zero (the
    /// default) retries immediately — in-process respawn is cheap, unlike
    /// waiting for a batch scheduler to hand back a node.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            timeout: None,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// The sleep before try number `attempt` (1-based; the first try never
    /// waits): `backoff * 2^(attempt-2)`.
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 || self.backoff.is_zero() {
            return Duration::ZERO;
        }
        self.backoff.saturating_mul(1u32 << (attempt - 2).min(16))
    }
}

/// A handle on a submitted job's eventual result.
///
/// Every receive path is non-panicking: a lost worker surfaces as
/// [`WorkerLost`], never as a poisoned thread or an unwrap.
pub struct JobHandle<R> {
    rx: Receiver<R>,
    /// When the job was submitted — the anchor for attempt deadlines.
    dispatched: Instant,
}

impl<R> JobHandle<R> {
    fn new(rx: Receiver<R>) -> Self {
        JobHandle {
            rx,
            dispatched: Instant::now(),
        }
    }

    /// Time since the job was dispatched (submitted to the pool). This is
    /// the attempt's age, independent of when the caller started waiting.
    pub fn elapsed(&self) -> Duration {
        self.dispatched.elapsed()
    }

    /// Block until the worker finishes; reports [`WorkerLost`] if the worker
    /// died mid-job (or the job was dropped by a failed pool).
    pub fn recv(self) -> Result<R, WorkerLost> {
        self.rx.recv().map_err(|_| WorkerLost)
    }

    /// Block until the job is `timeout` old, measured **from dispatch**, not
    /// from this call: a handle that sat unobserved for a while gets only
    /// the remainder of its budget, and a budget already spent returns
    /// immediately. This is what makes per-attempt retry deadlines honest —
    /// the clock starts when the job is issued, wherever the master happens
    /// to be looping. `Ok(Some(r))` on completion, `Ok(None)` on timeout
    /// (the job may still be running — poll again, typically after a
    /// [`MwPool::supervise`] pass), `Err(WorkerLost)` if the result can no
    /// longer arrive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<R>, WorkerLost> {
        let remaining = timeout.saturating_sub(self.elapsed());
        match self.rx.recv_timeout(remaining) {
            Ok(r) => Ok(Some(r)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(WorkerLost),
        }
    }

    /// Non-blocking poll with the same contract as
    /// [`recv_timeout`](JobHandle::recv_timeout).
    pub fn try_recv(&self) -> Result<Option<R>, WorkerLost> {
        match self.rx.try_recv() {
            Ok(r) => Ok(Some(r)),
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => Err(WorkerLost),
        }
    }
}

/// Shutdown found workers that had died rather than exited cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownError {
    /// Workers (over the pool's lifetime, respawns included) that drained
    /// the queue and exited cleanly.
    pub clean: usize,
    /// Workers that died — panicked, or killed by fault injection.
    pub lost: usize,
}

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} MW worker(s) died before shutdown ({} exited cleanly)",
            self.lost, self.clean
        )
    }
}

impl std::error::Error for ShutdownError {}

/// The default worker-respawn budget for `n` workers: `max(2n, 4)` respawns
/// over the pool's lifetime before it declares itself failed.
pub fn default_respawn_budget(n_workers: usize) -> u64 {
    (2 * n_workers as u64).max(4)
}

/// One worker slot: the thread handle plus the liveness flag its
/// [`AliveGuard`] disarms on exit.
struct Slot {
    handle: Option<JoinHandle<()>>,
    alive: Arc<AtomicBool>,
    incarnation: u32,
    /// Earliest instant a respawn of this slot may happen, set by the
    /// jittered-backoff policy when supervision first observes the death
    /// (DESIGN.md §16). `None` while the worker is alive or the respawn is
    /// not deferred.
    not_before: Option<Instant>,
}

struct Core {
    job_tx: Option<Sender<Job>>,
    slots: Vec<Slot>,
    respawn_budget: u64,
    shutdown_outcome: Option<Result<usize, ShutdownError>>,
}

/// A supervised pool of MW workers. See the module docs for the fault model.
pub struct MwPool {
    core: Mutex<Core>,
    /// Kept so the master can respawn workers onto the same queue and drain
    /// it when the pool fails; also means `send` cannot race a disconnect.
    job_rx: Receiver<Job>,
    n_workers: usize,
    stats: Arc<Vec<WorkerStats>>,
    queue_depth: Arc<AtomicU64>,
    workers_lost: Arc<AtomicU64>,
    respawns: AtomicU64,
    failed: AtomicBool,
    faults: FaultPlan,
    /// Deferral schedule for repeated respawns of one slot (`NSX_RESPAWN_BACKOFF`).
    backoff: BackoffPolicy,
    notifier: Arc<CompletionNotifier>,
    /// Set at construction when a registry is passed, or later via
    /// [`MwPool::attach_registry`] (the shared-pool case); write-once so the
    /// mirrored handles stay stable for the pool's lifetime.
    obs: OnceLock<Arc<PoolObs>>,
}

/// RAII liveness beacon held by each worker thread. Dropping it — whether by
/// clean return, injected death, or panic unwind — flips the slot's `alive`
/// flag; unless the exit was `defuse`d (clean shutdown), the drop also
/// counts a lost worker.
struct AliveGuard {
    alive: Arc<AtomicBool>,
    lost: Arc<AtomicU64>,
    lost_obs: Option<Arc<Counter>>,
    notifier: Arc<CompletionNotifier>,
    defused: bool,
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::SeqCst);
        if !self.defused {
            self.lost.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = &self.lost_obs {
                c.inc();
            }
        }
        // A worker exit can disconnect an in-flight job's channel; wake any
        // master blocked on a batch so it observes the loss now.
        self.notifier.bump();
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    w: usize,
    incarnation: u32,
    fault: WorkerFault,
    rx: Receiver<Job>,
    stats: Arc<Vec<WorkerStats>>,
    queue_depth: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
    lost: Arc<AtomicU64>,
    notifier: Arc<CompletionNotifier>,
    obs: Option<Arc<PoolObs>>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("mw-worker-{w}.{incarnation}"))
        .spawn(move || {
            let mut guard = AliveGuard {
                alive,
                lost,
                lost_obs: obs.as_ref().map(|o| Arc::clone(&o.workers_lost)),
                notifier: Arc::clone(&notifier),
                defused: false,
            };
            // MWWorker loop: execute a task, report the result, wait for
            // another task.
            let mut executed = 0u64;
            loop {
                let t_wait = std::time::Instant::now();
                let Ok(job) = rx.recv() else {
                    // Master dropped the job sender: clean shutdown.
                    guard.defused = true;
                    break;
                };
                let idle = t_wait.elapsed().as_nanos() as u64;
                stats[w].idle_nanos.fetch_add(idle, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.worker_idle_nanos[w].add(idle);
                }
                queue_depth.fetch_sub(1, Ordering::Relaxed);
                if fault.kill_after.is_some_and(|n| executed >= n) {
                    // Injected fault: the node is reclaimed with a job in
                    // hand — its result is never sent. The guard must drop
                    // FIRST: dropping the job unblocks the master with
                    // `WorkerLost`, and a `supervise()` call racing in right
                    // then must already see the slot dead or it would skip
                    // the respawn.
                    drop(guard);
                    drop(job);
                    return;
                }
                if let Some(d) = fault.delay_for(executed) {
                    std::thread::sleep(d);
                }
                let drop_result = fault.drop_at == Some(executed);
                // Count the job before running it: the job's last act is
                // delivering its result, and a caller unblocked by that
                // delivery must see this job in the counters.
                stats[w].jobs.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.worker_jobs[w].inc();
                }
                let t0 = std::time::Instant::now();
                job(w, drop_result);
                executed += 1;
                let dt = t0.elapsed().as_nanos() as u64;
                stats[w].busy_nanos.fetch_add(dt, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.worker_busy_nanos[w].add(dt);
                }
                // The job either sent its result or dropped the sender
                // (injected loss): either way a pending handle resolved.
                notifier.bump();
            }
        })
        .unwrap_or_else(|e| panic!("failed to spawn MW worker {w}: {e}"))
}

impl MwPool {
    /// Spawn `n_workers` supervised worker threads (no faults, default
    /// respawn budget).
    pub fn new(n_workers: usize) -> Self {
        Self::with_options(
            n_workers,
            FaultPlan::none(),
            default_respawn_budget(n_workers),
            None,
        )
    }

    /// Spawn `n_workers` worker threads with run accounting mirrored into
    /// `registry` (job submissions, queue-depth high-water mark, lost
    /// workers, respawns, per-worker jobs and busy/idle nanoseconds).
    pub fn with_metrics(n_workers: usize, registry: &MetricsRegistry) -> Self {
        Self::with_options(
            n_workers,
            FaultPlan::none(),
            default_respawn_budget(n_workers),
            Some(registry),
        )
    }

    /// Spawn supervised workers with the given fault plan and the default
    /// respawn budget.
    pub fn supervised(n_workers: usize, faults: FaultPlan) -> Self {
        Self::with_options(n_workers, faults, default_respawn_budget(n_workers), None)
    }

    /// Spawn workers with legacy fault injection and *no* respawn budget:
    /// worker `w` dies (stops pulling work, dropping its in-flight job's
    /// result) immediately after executing `faults[w]` jobs, and stays dead.
    /// Workers beyond `faults.len()` are immortal. Used to test master-side
    /// reassignment with exact loss counts.
    pub fn with_fault_injection(n_workers: usize, faults: &[Option<u64>]) -> Self {
        Self::with_options(n_workers, FaultPlan::from_die_after(faults), 0, None)
    }

    /// Full-control constructor: worker count, fault plan, respawn budget,
    /// and optional metrics registry.
    pub fn with_options(
        n_workers: usize,
        faults: FaultPlan,
        respawn_budget: u64,
        registry: Option<&MetricsRegistry>,
    ) -> Self {
        assert!(n_workers >= 1);
        let (job_tx, job_rx) = unbounded::<Job>();
        let stats: Arc<Vec<WorkerStats>> =
            Arc::new((0..n_workers).map(|_| WorkerStats::default()).collect());
        let queue_depth = Arc::new(AtomicU64::new(0));
        let workers_lost = Arc::new(AtomicU64::new(0));
        let notifier = Arc::new(CompletionNotifier::new());
        let obs: OnceLock<Arc<PoolObs>> = OnceLock::new();
        if let Some(reg) = registry {
            let _ = obs.set(Arc::new(PoolObs::register(reg, n_workers)));
        }
        let slots = (0..n_workers)
            .map(|w| {
                let alive = Arc::new(AtomicBool::new(true));
                let handle = spawn_worker(
                    w,
                    0,
                    faults.fault_for(w, 0),
                    job_rx.clone(),
                    Arc::clone(&stats),
                    Arc::clone(&queue_depth),
                    Arc::clone(&alive),
                    Arc::clone(&workers_lost),
                    Arc::clone(&notifier),
                    obs.get().cloned(),
                );
                Slot {
                    handle: Some(handle),
                    alive,
                    incarnation: 0,
                    not_before: None,
                }
            })
            .collect();
        MwPool {
            core: Mutex::new(Core {
                job_tx: Some(job_tx),
                slots,
                respawn_budget,
                shutdown_outcome: None,
            }),
            job_rx,
            n_workers,
            stats,
            queue_depth,
            workers_lost,
            respawns: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            faults,
            backoff: BackoffPolicy::from_env(),
            notifier,
            obs,
        }
    }

    /// A mutex-poison-proof lock: supervision must keep working even if some
    /// thread panicked while holding the core lock.
    fn lock_core(&self) -> MutexGuard<'_, Core> {
        match self.core.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of worker slots (the pool's nominal width).
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Mirror this pool's accounting into `registry` after construction.
    ///
    /// The process-wide shared pool is built lazily by the first run, before
    /// any service-level registry exists, so its construction-time hook is
    /// always `None`; this late attachment is how a multi-run service gets a
    /// pool-wide `mw.pool.queue_depth_hwm` that accounts for jobs queued by
    /// *all* runs sharing the pool. First attachment wins (the mirrored
    /// handles are pool-lifetime); later calls return `false` and change
    /// nothing. Workers already running keep their per-worker mirroring off
    /// (their hooks were captured at spawn); submissions, respawns, and the
    /// queue-depth high-water mark are mirrored from this point on.
    pub fn attach_registry(&self, registry: &MetricsRegistry) -> bool {
        self.obs
            .set(Arc::new(PoolObs::register(registry, self.n_workers)))
            .is_ok()
    }

    /// Workers currently alive (slots whose thread is running).
    pub fn live_workers(&self) -> usize {
        self.lock_core()
            .slots
            .iter()
            .filter(|s| s.handle.is_some() && s.alive.load(Ordering::SeqCst))
            .count()
    }

    /// Workers lost (died without a clean exit) over the pool's lifetime.
    pub fn workers_lost(&self) -> u64 {
        self.workers_lost.load(Ordering::Relaxed)
    }

    /// Workers respawned by supervision over the pool's lifetime.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// True once the pool has permanently failed: every worker dead and the
    /// respawn budget exhausted. All pending and future jobs report
    /// [`WorkerLost`]; callers should fall back to inline execution.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }

    /// One supervision pass: reap dead workers, respawn them into their
    /// slots while the respawn budget lasts, and — if every worker is dead
    /// with no budget left — mark the pool failed and drain the job queue so
    /// no pending handle waits forever. Returns the number of live workers.
    ///
    /// Respawned workers are healthy regardless of the fault plan (a
    /// restarted node is a fresh node); they continue pulling from the same
    /// queue, so queued work survives any death the budget covers.
    ///
    /// A slot's *first* respawn is immediate; repeated respawns of the same
    /// slot are deferred by the jittered exponential [`BackoffPolicy`]
    /// (`NSX_RESPAWN_BACKOFF`, DESIGN.md §16). Deferral never sleeps — the
    /// slot is simply skipped until its deadline, and a deferred slot keeps
    /// its budget and does not count toward pool failure.
    pub fn supervise(&self) -> usize {
        let mut core = self.lock_core();
        if core.job_tx.is_none() {
            return 0; // shut down: nothing to supervise
        }
        let now = Instant::now();
        let mut live = 0;
        let mut deferred = 0;
        for w in 0..core.slots.len() {
            if core.slots[w].alive.load(Ordering::SeqCst) {
                live += 1;
                continue;
            }
            // Dead worker: reap the thread (join is quick — the guard drops
            // at the very end of the worker fn), then respawn if we can.
            if let Some(h) = core.slots[w].handle.take() {
                let _ = h.join();
            }
            if core.respawn_budget == 0 {
                continue;
            }
            // Jittered exponential backoff on repeated deaths of this slot,
            // anchored at the pass that first observed the death.
            let delay = self.backoff.delay_for(w, core.slots[w].incarnation + 1);
            let not_before = *core.slots[w].not_before.get_or_insert(now + delay);
            if now < not_before {
                deferred += 1;
                continue;
            }
            core.respawn_budget -= 1;
            let incarnation = core.slots[w].incarnation + 1;
            let alive = Arc::new(AtomicBool::new(true));
            let handle = spawn_worker(
                w,
                incarnation,
                self.faults.fault_for(w, incarnation),
                self.job_rx.clone(),
                Arc::clone(&self.stats),
                Arc::clone(&self.queue_depth),
                Arc::clone(&alive),
                Arc::clone(&self.workers_lost),
                Arc::clone(&self.notifier),
                self.obs.get().cloned(),
            );
            core.slots[w] = Slot {
                handle: Some(handle),
                alive,
                incarnation,
                not_before: None,
            };
            self.respawns.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.obs.get() {
                o.respawns.inc();
            }
            live += 1;
        }
        if live == 0 && deferred == 0 {
            // Out of workers and out of budget: fail fast. The flag is set
            // before the lock is released, so any submit that observes it
            // clear will have enqueued before the drain below. (A deferred
            // respawn is *not* failure: budget remains and the slot revives
            // once its backoff deadline passes.)
            self.failed.store(true, Ordering::SeqCst);
            drop(core);
            self.drain_queue();
        }
        live
    }

    /// Discard every queued job. Each dropped job drops its result sender,
    /// so the corresponding [`JobHandle`] reports [`WorkerLost`] promptly.
    fn drain_queue(&self) {
        let mut drained = false;
        while let Ok(job) = self.job_rx.try_recv() {
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
            drop(job);
            drained = true;
        }
        if drained {
            // Dropped jobs disconnected their handles; wake blocked masters.
            self.notifier.bump();
        }
    }

    /// Snapshot the completion generation. Take this *before* scanning
    /// pending handles; pass it to [`wait_for_completion`]
    /// (MwPool::wait_for_completion) so a completion that lands mid-scan
    /// wakes the wait immediately instead of being lost.
    pub(crate) fn completion_generation(&self) -> u64 {
        self.notifier.generation()
    }

    /// Block until any job completion / worker death / queue drain happens
    /// after the `seen` snapshot, or `timeout` elapses.
    pub(crate) fn wait_for_completion(&self, seen: u64, timeout: Duration) {
        self.notifier.wait(seen, timeout);
    }

    /// Submit a job; returns immediately with a handle. Never panics: on a
    /// failed or shut-down pool the handle reports [`WorkerLost`].
    pub fn submit<R, F>(&self, f: F) -> JobHandle<R>
    where
        R: Send + 'static,
        F: FnOnce(usize) -> R + Send + 'static,
    {
        let (tx, rx) = bounded(1);
        if self.is_failed() {
            // tx drops here: the handle is born disconnected.
            return JobHandle::new(rx);
        }
        let job: Job = Box::new(move |worker, drop_result| {
            let r = f(worker);
            if !drop_result {
                // A dropped receiver just means the master lost interest.
                let _ = tx.send(r);
            }
        });
        let core = self.lock_core();
        let Some(job_tx) = core.job_tx.as_ref() else {
            return JobHandle::new(rx); // shut down: handle is disconnected
        };
        // `queue_depth` is pool-global, so on a shared pool this high-water
        // mark accounts for jobs queued by every run submitting to it, not
        // just the caller's.
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(o) = self.obs.get() {
            o.jobs_submitted.inc();
            o.queue_depth_hwm.record(depth);
        }
        if job_tx.send(job).is_err() {
            // Unreachable while the pool holds `job_rx`, but stay honest.
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
        JobHandle::new(rx)
    }

    /// Submit and block for the result (RPC style).
    pub fn call<R, F>(&self, f: F) -> Result<R, WorkerLost>
    where
        R: Send + 'static,
        F: FnOnce(usize) -> R + Send + 'static,
    {
        self.submit(f).recv()
    }

    /// Snapshot of per-worker job counts.
    pub fn job_counts(&self) -> Vec<u64> {
        self.stats
            .iter()
            .map(|s| s.jobs.load(Ordering::Relaxed))
            .collect()
    }

    /// Snapshot of per-worker busy time in seconds.
    pub fn busy_seconds(&self) -> Vec<f64> {
        self.stats
            .iter()
            .map(|s| s.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9)
            .collect()
    }

    /// Snapshot of per-worker idle (waiting-for-work) time in seconds.
    pub fn idle_seconds(&self) -> Vec<f64> {
        self.stats
            .iter()
            .map(|s| s.idle_nanos.load(Ordering::Relaxed) as f64 * 1e-9)
            .collect()
    }

    /// Jobs currently submitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Shut the pool down: stop accepting work, let workers drain the queue,
    /// and join them all. Idempotent — repeat calls return the first
    /// outcome. `Ok(clean)` reports how many workers (respawns included)
    /// exited cleanly; [`ShutdownError`] reports that some had died.
    pub fn shutdown(&self) -> Result<usize, ShutdownError> {
        let mut core = self.lock_core();
        if let Some(outcome) = core.shutdown_outcome {
            return outcome;
        }
        core.job_tx.take(); // workers drain the queue, then exit cleanly
        let handles: Vec<JoinHandle<()>> = core
            .slots
            .iter_mut()
            .filter_map(|s| s.handle.take())
            .collect();
        // Joining under the lock is safe (workers never lock the core) and
        // makes concurrent shutdown/supervise callers wait for the outcome.
        for h in handles {
            let _ = h.join();
        }
        let spawned = self.n_workers + self.respawns.load(Ordering::Relaxed) as usize;
        let lost = self.workers_lost.load(Ordering::Relaxed) as usize;
        let clean = spawned.saturating_sub(lost);
        let outcome = if lost == 0 {
            Ok(clean)
        } else {
            Err(ShutdownError { clean, lost })
        };
        core.shutdown_outcome = Some(outcome);
        outcome
    }
}

impl Drop for MwPool {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_returns_result() {
        let pool = MwPool::new(2);
        let r = pool.call(|_w| 2 + 2).unwrap();
        assert_eq!(r, 4);
    }

    #[test]
    fn submit_runs_concurrently() {
        let pool = MwPool::new(4);
        let handles: Vec<_> = (0..8).map(|i| pool.submit(move |_| i * i)).collect();
        let results: Vec<i32> = handles.into_iter().map(|h| h.recv().unwrap()).collect();
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn stats_count_jobs() {
        let pool = MwPool::new(3);
        for _ in 0..30 {
            pool.call(|_| ()).unwrap();
        }
        let counts = pool.job_counts();
        assert_eq!(counts.iter().sum::<u64>(), 30);
    }

    #[test]
    fn workers_see_their_ids() {
        let pool = MwPool::new(4);
        let ids: Vec<usize> = (0..32).map(|_| pool.call(|w| w).unwrap()).collect();
        assert!(ids.iter().all(|&w| w < 4));
    }

    #[test]
    fn shutdown_joins_cleanly_and_is_idempotent() {
        let pool = MwPool::new(2);
        pool.call(|_| ()).unwrap();
        assert_eq!(pool.shutdown(), Ok(2));
        assert_eq!(
            pool.shutdown(),
            Ok(2),
            "second shutdown returns the cached outcome"
        );
        // A post-shutdown submission fails fast instead of panicking.
        assert_eq!(pool.submit(|_| 1).recv(), Err(WorkerLost));
    }

    #[test]
    fn shutdown_reports_lost_workers() {
        let pool = MwPool::with_fault_injection(2, &[Some(0), None]);
        let _ = pool.submit(|w| w).recv(); // feeds the dying worker (maybe)
                                           // Make sure worker 0 actually got a job and died.
        while pool.workers_lost() == 0 {
            match pool.submit(|w| w).recv() {
                Ok(_) | Err(WorkerLost) => {}
            }
        }
        let err = pool.shutdown().unwrap_err();
        assert_eq!(err.lost, 1);
        assert_eq!(err.clean, 1);
    }

    /// Kill the (sole) worker of `pool` by feeding it a panicking job, and
    /// wait until supervision can observe the death.
    fn kill_sole_worker(pool: &MwPool) {
        let h = pool.submit::<(), _>(|_| panic!("injected worker death"));
        assert_eq!(h.recv(), Err(WorkerLost));
        // The liveness flag flips when the worker's guard drops, marginally
        // after the in-flight job's channel disconnects; wait it out.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.live_workers() > 0 {
            assert!(Instant::now() < deadline, "death never became observable");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn repeated_deaths_defer_respawn_with_jittered_backoff() {
        let pool = MwPool::with_options(1, FaultPlan::none(), 8, None);
        // First death of the slot: respawn is immediate (backoff's respawn
        // #1 is always free).
        kill_sole_worker(&pool);
        assert_eq!(pool.supervise(), 1, "first respawn must be immediate");
        assert_eq!(pool.respawns(), 1);
        // Second death of the same slot: the default backoff policy defers
        // the respawn, without consuming budget or failing the pool.
        kill_sole_worker(&pool);
        assert_eq!(pool.supervise(), 0, "second respawn must be deferred");
        assert_eq!(pool.respawns(), 1, "no respawn during the deferral");
        assert!(!pool.is_failed(), "a deferred respawn is not pool failure");
        // Once the (jittered, capped) delay passes, supervision revives the
        // slot and the pool serves work again.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.supervise() == 0 {
            assert!(Instant::now() < deadline, "deferred respawn never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.respawns(), 2);
        assert_eq!(pool.call(|_| 7).unwrap(), 7);
    }

    #[test]
    fn injected_fault_surfaces_as_worker_lost() {
        let pool = MwPool::with_fault_injection(2, &[Some(0), None]);
        let mut lost = 0;
        let mut ok = 0;
        for _ in 0..20 {
            match pool.submit(|w| w).recv() {
                Ok(_) => ok += 1,
                Err(WorkerLost) => lost += 1,
            }
        }
        assert_eq!(
            lost, 1,
            "exactly the one in-flight job on the dying worker is lost"
        );
        assert_eq!(ok, 19);
    }

    #[test]
    fn pool_survives_partial_worker_death() {
        let pool = MwPool::with_fault_injection(3, &[Some(2), None, None]);
        let results: Vec<Result<usize, WorkerLost>> =
            (0..40).map(|_| pool.submit(|w| w).recv()).collect();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert!(ok >= 39, "{ok} of 40 succeeded");
    }

    #[test]
    fn supervise_respawns_dead_workers() {
        // Worker 0 dies after 2 jobs; supervision must bring the pool back
        // to full strength and keep it serving.
        let pool = MwPool::supervised(2, FaultPlan::none().kill(0, 2));
        let mut lost = 0;
        for _ in 0..40 {
            if pool.call(|w| w).is_err() {
                lost += 1;
            }
            pool.supervise();
        }
        assert_eq!(
            lost, 1,
            "only the in-flight job on the dying worker is lost"
        );
        assert_eq!(pool.live_workers(), 2);
        assert_eq!(pool.workers_lost(), 1);
        assert_eq!(pool.respawns(), 1);
        assert!(!pool.is_failed());
    }

    #[test]
    fn respawned_workers_are_healthy() {
        // kill:0:after=0 would kill every incarnation if faults reapplied;
        // the plan must only poison incarnation 0.
        let pool = MwPool::supervised(1, FaultPlan::none().kill(0, 0));
        assert_eq!(pool.submit(|w| w).recv(), Err(WorkerLost));
        assert!(pool.supervise() >= 1);
        for _ in 0..10 {
            assert!(pool.call(|w| w).is_ok());
        }
        assert_eq!(pool.workers_lost(), 1);
    }

    #[test]
    fn exhausted_budget_fails_pool_and_drains_queue() {
        // Single worker, dies immediately, no budget: the pool must fail
        // fast — every pending and future handle errors, nothing hangs.
        let pool = MwPool::with_options(1, FaultPlan::none().kill(0, 0), 0, None);
        let pending: Vec<_> = (0..5).map(|i| pool.submit(move |_| i)).collect();
        // Wait for the worker to take the first job and die.
        while pool.workers_lost() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.supervise(), 0);
        assert!(pool.is_failed());
        for h in pending {
            assert_eq!(h.recv(), Err(WorkerLost));
        }
        assert_eq!(pool.submit(|_| 0).recv(), Err(WorkerLost));
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn recv_timeout_polls_then_completes() {
        let pool = MwPool::new(1);
        let h = pool.submit(|_| {
            std::thread::sleep(Duration::from_millis(40));
            7
        });
        assert_eq!(h.recv_timeout(Duration::from_millis(5)), Ok(None));
        // The deadline is dispatch-anchored, so a poll loop must grow its
        // budget rather than repeat a spent one.
        let mut got = None;
        for i in 1..=100u64 {
            if let Some(r) = h.recv_timeout(Duration::from_millis(10 * i)).unwrap() {
                got = Some(r);
                break;
            }
        }
        assert_eq!(got, Some(7));
    }

    #[test]
    fn recv_timeout_is_anchored_at_dispatch_not_call() {
        let pool = MwPool::new(1);
        let h = pool.submit(|_| {
            std::thread::sleep(Duration::from_millis(300));
            7
        });
        // Burn most of a 100ms budget before the first call: the call may
        // only wait for the remainder, not a fresh 100ms.
        std::thread::sleep(Duration::from_millis(70));
        let t0 = Instant::now();
        assert_eq!(h.recv_timeout(Duration::from_millis(100)), Ok(None));
        assert!(
            t0.elapsed() < Duration::from_millis(90),
            "call re-anchored the deadline: waited {:?} of a budget with only ~30ms left",
            t0.elapsed()
        );
        // A budget already spent at call time returns immediately.
        let t0 = Instant::now();
        assert_eq!(h.recv_timeout(Duration::from_millis(20)), Ok(None));
        assert!(t0.elapsed() < Duration::from_millis(20));
        assert!(h.elapsed() >= Duration::from_millis(70));
        // A budget generous from dispatch still completes.
        assert_eq!(h.recv_timeout(Duration::from_secs(10)), Ok(Some(7)));
    }

    #[test]
    fn delay_fault_slows_but_does_not_lose() {
        let pool = MwPool::supervised(1, FaultPlan::none().delay(0, 0, 15));
        let t0 = std::time::Instant::now();
        assert_eq!(pool.call(|_| 3), Ok(3));
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn drop_fault_loses_exactly_that_result() {
        // Worker 0's second job (index 1) executes but its result is
        // discarded — lost on the wire, not a dead worker.
        let pool = MwPool::supervised(1, FaultPlan::none().drop_result(0, 1));
        assert_eq!(pool.call(|_| 0), Ok(0));
        assert_eq!(pool.call(|_| 1), Err(WorkerLost));
        assert_eq!(pool.call(|_| 2), Ok(2));
        assert_eq!(pool.workers_lost(), 0, "the worker itself stayed alive");
        assert_eq!(pool.live_workers(), 1);
    }

    #[test]
    fn metrics_mirror_pool_activity() {
        let reg = obs::MetricsRegistry::new();
        let pool = MwPool::with_metrics(3, &reg);
        let handles: Vec<_> = (0..24).map(|i| pool.submit(move |_| i)).collect();
        for h in handles {
            h.recv().unwrap();
        }
        assert_eq!(reg.counter("mw.pool.jobs_submitted").get(), 24);
        let per_worker: u64 = (0..3)
            .map(|w| reg.counter(&format!("mw.pool.worker{w}.jobs")).get())
            .sum();
        assert_eq!(per_worker, 24);
        assert!(reg.gauge("mw.pool.queue_depth_hwm").max() >= 1);
        assert_eq!(pool.shutdown(), Ok(3));
    }

    #[test]
    fn late_attached_registry_accounts_for_all_submitters() {
        let pool = Arc::new(MwPool::new(2));
        let reg = obs::MetricsRegistry::new();
        assert!(pool.attach_registry(&reg));
        assert!(!pool.attach_registry(&reg), "second attach is a no-op");
        // Two concurrent submitters share the one pool; the mirrored
        // counters and the queue-depth high-water mark must cover both.
        std::thread::scope(|s| {
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let handles: Vec<_> = (0..50).map(|i| pool.submit(move |_| i)).collect();
                    for h in handles {
                        h.recv().unwrap();
                    }
                });
            }
        });
        assert_eq!(reg.counter("mw.pool.jobs_submitted").get(), 100);
        assert!(reg.gauge("mw.pool.queue_depth_hwm").max() >= 1);
    }

    #[test]
    fn metrics_count_losses_and_respawns() {
        let reg = obs::MetricsRegistry::new();
        let pool = MwPool::with_options(
            2,
            FaultPlan::none().kill(0, 0),
            default_respawn_budget(2),
            Some(&reg),
        );
        while pool.workers_lost() == 0 {
            let _ = pool.submit(|w| w).recv();
        }
        pool.supervise();
        assert_eq!(reg.counter("mw.pool.workers_lost").get(), 1);
        assert_eq!(reg.counter("mw.pool.respawns").get(), 1);
    }

    #[test]
    fn idle_time_accrues_while_waiting() {
        let pool = MwPool::new(1);
        pool.call(|_| ()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.call(|_| ()).unwrap();
        let idle = pool.idle_seconds();
        assert!(
            idle[0] >= 0.015,
            "worker should have idled ~20ms, got {}s",
            idle[0]
        );
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn heavy_fanout_completes() {
        let pool = MwPool::new(8);
        let handles: Vec<_> = (0..1000u64).map(|i| pool.submit(move |_| i)).collect();
        let sum: u64 = handles.into_iter().map(|h| h.recv().unwrap()).sum();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn retry_policy_backoff_doubles() {
        let p = RetryPolicy {
            max_attempts: 4,
            timeout: None,
            backoff: Duration::from_millis(10),
        };
        assert_eq!(p.backoff_before(1), Duration::ZERO);
        assert_eq!(p.backoff_before(2), Duration::from_millis(10));
        assert_eq!(p.backoff_before(3), Duration::from_millis(20));
        assert_eq!(p.backoff_before(4), Duration::from_millis(40));
        assert_eq!(RetryPolicy::default().backoff_before(3), Duration::ZERO);
    }
}
