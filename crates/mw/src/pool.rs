//! The MW worker pool: real OS threads fed over channels.
//!
//! This is the in-process substitute for the paper's MPI-connected worker
//! ranks (see DESIGN.md, substitutions): the master submits jobs, workers
//! execute them, and results return over a per-job channel — structurally
//! the send/recv pattern of the original `MWRMComm` layer. Tasks and workers
//! never communicate with each other, only with the master, exactly as in
//! §3.1.

use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use obs::{Counter, Gauge, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce(usize) + Send + 'static>;

/// Per-worker execution counters.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Jobs executed by this worker.
    pub jobs: AtomicU64,
    /// Total busy time in nanoseconds.
    pub busy_nanos: AtomicU64,
    /// Total idle time (blocked waiting for work) in nanoseconds.
    pub idle_nanos: AtomicU64,
}

/// Registry handles mirrored by the pool when one is attached at
/// construction ([`MwPool::with_metrics`]). Metric names:
/// `mw.pool.jobs_submitted`, `mw.pool.queue_depth_hwm`, and per worker `w`
/// `mw.pool.worker{w}.{jobs,busy_nanos,idle_nanos}`.
struct PoolObs {
    jobs_submitted: Arc<Counter>,
    queue_depth_hwm: Arc<Gauge>,
    worker_jobs: Vec<Arc<Counter>>,
    worker_busy_nanos: Vec<Arc<Counter>>,
    worker_idle_nanos: Vec<Arc<Counter>>,
}

impl PoolObs {
    fn register(registry: &MetricsRegistry, n_workers: usize) -> Self {
        PoolObs {
            jobs_submitted: registry.counter("mw.pool.jobs_submitted"),
            queue_depth_hwm: registry.gauge("mw.pool.queue_depth_hwm"),
            worker_jobs: (0..n_workers)
                .map(|w| registry.counter(&format!("mw.pool.worker{w}.jobs")))
                .collect(),
            worker_busy_nanos: (0..n_workers)
                .map(|w| registry.counter(&format!("mw.pool.worker{w}.busy_nanos")))
                .collect(),
            worker_idle_nanos: (0..n_workers)
                .map(|w| registry.counter(&format!("mw.pool.worker{w}.idle_nanos")))
                .collect(),
        }
    }
}

/// The worker executing a job died (or panicked) before reporting a result.
///
/// In the paper's deployment this is the Condor-style opportunistic case:
/// a worker node is reclaimed mid-task and the master must reassign the
/// work (§4.2, "When a worker is restarted by the master...").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLost;

impl std::fmt::Display for WorkerLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MW worker died before reporting its result")
    }
}

impl std::error::Error for WorkerLost {}

/// A handle on a submitted job's eventual result.
pub struct JobHandle<R> {
    rx: Receiver<R>,
}

impl<R> JobHandle<R> {
    /// Block until the worker finishes and return the result.
    ///
    /// # Panics
    /// If the worker died while executing the job; use
    /// [`JobHandle::wait_result`] to recover instead.
    pub fn wait(self) -> R {
        self.rx.recv().expect("MW worker dropped the result")
    }

    /// Block until the worker finishes; reports [`WorkerLost`] if the
    /// worker died mid-job.
    pub fn wait_result(self) -> Result<R, WorkerLost> {
        self.rx.recv().map_err(|_| WorkerLost)
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<R> {
        self.rx.try_recv().ok()
    }
}

/// A pool of MW workers.
pub struct MwPool {
    job_tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<Vec<WorkerStats>>,
    queue_depth: Arc<AtomicU64>,
    obs: Option<Arc<PoolObs>>,
}

impl MwPool {
    /// Spawn `n_workers` worker threads.
    pub fn new(n_workers: usize) -> Self {
        Self::build(n_workers, &[], None)
    }

    /// Spawn `n_workers` worker threads with run accounting mirrored into
    /// `registry` (job submissions, queue-depth high-water mark, per-worker
    /// jobs and busy/idle nanoseconds).
    pub fn with_metrics(n_workers: usize, registry: &MetricsRegistry) -> Self {
        Self::build(n_workers, &[], Some(registry))
    }

    /// Spawn workers with fault injection: worker `w` dies (stops pulling
    /// work, dropping its in-flight job's result) immediately after
    /// executing `faults[w]` jobs. Workers beyond `faults.len()` are
    /// immortal. Used to test master-side reassignment.
    pub fn with_fault_injection(n_workers: usize, faults: &[Option<u64>]) -> Self {
        Self::build(n_workers, faults, None)
    }

    fn build(n_workers: usize, faults: &[Option<u64>], registry: Option<&MetricsRegistry>) -> Self {
        assert!(n_workers >= 1);
        let (job_tx, job_rx) = unbounded::<Job>();
        let stats: Arc<Vec<WorkerStats>> =
            Arc::new((0..n_workers).map(|_| WorkerStats::default()).collect());
        let queue_depth = Arc::new(AtomicU64::new(0));
        let obs = registry.map(|reg| Arc::new(PoolObs::register(reg, n_workers)));
        let handles = (0..n_workers)
            .map(|w| {
                let rx = job_rx.clone();
                let stats = Arc::clone(&stats);
                let queue_depth = Arc::clone(&queue_depth);
                let obs = obs.clone();
                let die_after = faults.get(w).copied().flatten();
                std::thread::Builder::new()
                    .name(format!("mw-worker-{w}"))
                    .spawn(move || {
                        // MWWorker loop: execute a task, report the result,
                        // wait for another task.
                        let mut executed = 0u64;
                        loop {
                            let t_wait = std::time::Instant::now();
                            let Ok(job) = rx.recv() else { break };
                            let idle = t_wait.elapsed().as_nanos() as u64;
                            stats[w].idle_nanos.fetch_add(idle, Ordering::Relaxed);
                            if let Some(o) = &obs {
                                o.worker_idle_nanos[w].add(idle);
                            }
                            queue_depth.fetch_sub(1, Ordering::Relaxed);
                            if die_after.map(|n| executed >= n).unwrap_or(false) {
                                // Injected fault: the node is reclaimed with
                                // a job in hand — its result is never sent.
                                drop(job);
                                return;
                            }
                            // Count the job before running it: the job's
                            // last act is delivering its result, and a
                            // caller unblocked by that delivery must see
                            // this job in the counters.
                            stats[w].jobs.fetch_add(1, Ordering::Relaxed);
                            if let Some(o) = &obs {
                                o.worker_jobs[w].inc();
                            }
                            let t0 = std::time::Instant::now();
                            job(w);
                            executed += 1;
                            let dt = t0.elapsed().as_nanos() as u64;
                            stats[w].busy_nanos.fetch_add(dt, Ordering::Relaxed);
                            if let Some(o) = &obs {
                                o.worker_busy_nanos[w].add(dt);
                            }
                        }
                    })
                    .expect("failed to spawn MW worker")
            })
            .collect();
        MwPool {
            job_tx: Some(job_tx),
            handles,
            stats,
            queue_depth,
            obs,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.handles.len()
    }

    /// Submit a job; returns immediately with a handle.
    pub fn submit<R, F>(&self, f: F) -> JobHandle<R>
    where
        R: Send + 'static,
        F: FnOnce(usize) -> R + Send + 'static,
    {
        let (tx, rx) = bounded(1);
        let job: Job = Box::new(move |worker| {
            // A dropped receiver just means the master lost interest.
            let _ = tx.send(f(worker));
        });
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(o) = &self.obs {
            o.jobs_submitted.inc();
            o.queue_depth_hwm.record(depth);
        }
        self.job_tx
            .as_ref()
            .expect("pool already shut down")
            .send(job)
            .expect("all MW workers exited");
        JobHandle { rx }
    }

    /// Submit and block for the result (RPC style).
    pub fn call<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(usize) -> R + Send + 'static,
    {
        self.submit(f).wait()
    }

    /// Snapshot of per-worker job counts.
    pub fn job_counts(&self) -> Vec<u64> {
        self.stats
            .iter()
            .map(|s| s.jobs.load(Ordering::Relaxed))
            .collect()
    }

    /// Snapshot of per-worker busy time in seconds.
    pub fn busy_seconds(&self) -> Vec<f64> {
        self.stats
            .iter()
            .map(|s| s.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9)
            .collect()
    }

    /// Snapshot of per-worker idle (waiting-for-work) time in seconds.
    pub fn idle_seconds(&self) -> Vec<f64> {
        self.stats
            .iter()
            .map(|s| s.idle_nanos.load(Ordering::Relaxed) as f64 * 1e-9)
            .collect()
    }

    /// Jobs currently submitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Shut the pool down, joining all workers.
    pub fn shutdown(mut self) {
        self.job_tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for MwPool {
    fn drop(&mut self) {
        self.job_tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_returns_result() {
        let pool = MwPool::new(2);
        let r = pool.call(|_w| 2 + 2);
        assert_eq!(r, 4);
    }

    #[test]
    fn submit_runs_concurrently() {
        let pool = MwPool::new(4);
        let handles: Vec<_> = (0..8).map(|i| pool.submit(move |_| i * i)).collect();
        let results: Vec<i32> = handles.into_iter().map(|h| h.wait()).collect();
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn stats_count_jobs() {
        let pool = MwPool::new(3);
        for _ in 0..30 {
            pool.call(|_| ());
        }
        let counts = pool.job_counts();
        assert_eq!(counts.iter().sum::<u64>(), 30);
    }

    #[test]
    fn workers_see_their_ids() {
        let pool = MwPool::new(4);
        let ids: Vec<usize> = (0..32).map(|_| pool.call(|w| w)).collect();
        assert!(ids.iter().all(|&w| w < 4));
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let pool = MwPool::new(2);
        pool.call(|_| ());
        pool.shutdown();
    }

    #[test]
    fn injected_fault_surfaces_as_worker_lost() {
        let pool = MwPool::with_fault_injection(2, &[Some(0), None]);
        let mut lost = 0;
        let mut ok = 0;
        for _ in 0..20 {
            match pool.submit(|w| w).wait_result() {
                Ok(_) => ok += 1,
                Err(WorkerLost) => lost += 1,
            }
        }
        assert_eq!(
            lost, 1,
            "exactly the one in-flight job on the dying worker is lost"
        );
        assert_eq!(ok, 19);
    }

    #[test]
    fn pool_survives_partial_worker_death() {
        let pool = MwPool::with_fault_injection(3, &[Some(2), None, None]);
        let results: Vec<Result<usize, WorkerLost>> =
            (0..40).map(|_| pool.submit(|w| w).wait_result()).collect();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert!(ok >= 39, "{ok} of 40 succeeded");
    }

    #[test]
    fn metrics_mirror_pool_activity() {
        let reg = obs::MetricsRegistry::new();
        let pool = MwPool::with_metrics(3, &reg);
        let handles: Vec<_> = (0..24).map(|i| pool.submit(move |_| i)).collect();
        for h in handles {
            h.wait();
        }
        assert_eq!(reg.counter("mw.pool.jobs_submitted").get(), 24);
        let per_worker: u64 = (0..3)
            .map(|w| reg.counter(&format!("mw.pool.worker{w}.jobs")).get())
            .sum();
        assert_eq!(per_worker, 24);
        assert!(reg.gauge("mw.pool.queue_depth_hwm").max() >= 1);
        pool.shutdown();
    }

    #[test]
    fn idle_time_accrues_while_waiting() {
        let pool = MwPool::new(1);
        pool.call(|_| ());
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.call(|_| ());
        let idle = pool.idle_seconds();
        assert!(
            idle[0] >= 0.015,
            "worker should have idled ~20ms, got {}s",
            idle[0]
        );
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn heavy_fanout_completes() {
        let pool = MwPool::new(8);
        let handles: Vec<_> = (0..1000u64).map(|i| pool.submit(move |_| i)).collect();
        let sum: u64 = handles.into_iter().map(|h| h.wait()).sum();
        assert_eq!(sum, 999 * 1000 / 2);
    }
}
