//! Fault injection for the MW worker pool: kill a worker after N jobs,
//! delay its jobs, or drop a result on the wire.
//!
//! This is the chaos-testing harness behind the paper's §4.2 narrative —
//! Condor-style opportunistic pools where "a worker is restarted by the
//! master" after its node is reclaimed mid-task. A [`FaultPlan`] describes
//! deterministic faults per worker slot; the pool's supervisor
//! (`MwPool::supervise`) and the backend's retry loop are expected to make
//! every plan that leaves at least one live worker invisible in the results
//! (see `tests/mw_faults.rs`).
//!
//! Plans can be built programmatically or parsed from the `NSX_FAULTS`
//! environment variable, a comma-separated list of directives:
//!
//! | Directive | Effect |
//! |---|---|
//! | `kill:<w>:after=<n>` | worker `w` dies after executing `n` jobs (the job in hand when it dies is lost) |
//! | `delay:<w>:ms=<d>` | worker `w` sleeps `d` wall-clock ms before every job |
//! | `delay:<w>:after=<n>:ms=<d>` | same, starting with its `n`-th job |
//! | `drop:<w>:at=<n>` | worker `w` executes its `n`-th job but its result is discarded (a lost result message) |
//!
//! Faults apply only to a worker slot's *first* incarnation: a respawned
//! worker is healthy, matching the restart-the-worker story.

use std::time::Duration;

/// A wall-clock delay injected before jobs on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Delay {
    /// First job index (0-based executed count) the delay applies to.
    pub after: u64,
    /// Sleep duration in milliseconds.
    pub millis: u64,
}

/// The faults injected into one worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerFault {
    /// Die (stop pulling work, dropping the in-flight job's result)
    /// immediately after executing this many jobs.
    pub kill_after: Option<u64>,
    /// Sleep before executing jobs (see [`Delay`]).
    pub delay: Option<Delay>,
    /// Execute the job with this 0-based index but discard its result.
    pub drop_at: Option<u64>,
}

impl WorkerFault {
    /// True when no fault is injected.
    pub fn is_none(&self) -> bool {
        *self == WorkerFault::default()
    }

    /// The injected delay for a job with executed-count `executed`, if any.
    pub fn delay_for(&self, executed: u64) -> Option<Duration> {
        self.delay
            .filter(|d| executed >= d.after)
            .map(|d| Duration::from_millis(d.millis))
    }
}

/// Deterministic per-worker fault injection plan (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<WorkerFault>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.iter().all(WorkerFault::is_none)
    }

    fn slot(&mut self, w: usize) -> &mut WorkerFault {
        if self.faults.len() <= w {
            self.faults.resize(w + 1, WorkerFault::default());
        }
        &mut self.faults[w]
    }

    /// Kill worker `w` after it executes `after` jobs.
    pub fn kill(mut self, w: usize, after: u64) -> Self {
        self.slot(w).kill_after = Some(after);
        self
    }

    /// Delay every job on worker `w` (from its `after`-th) by `millis` ms.
    pub fn delay(mut self, w: usize, after: u64, millis: u64) -> Self {
        self.slot(w).delay = Some(Delay { after, millis });
        self
    }

    /// Drop the result of worker `w`'s `at`-th job (0-based).
    pub fn drop_result(mut self, w: usize, at: u64) -> Self {
        self.slot(w).drop_at = Some(at);
        self
    }

    /// The fault spec for worker slot `w`, incarnation `incarnation`.
    /// Respawned workers (incarnation ≥ 1) are healthy.
    pub fn fault_for(&self, w: usize, incarnation: u32) -> WorkerFault {
        if incarnation > 0 {
            return WorkerFault::default();
        }
        self.faults.get(w).copied().unwrap_or_default()
    }

    /// Convert the legacy per-worker `die_after` array (the old ad-hoc
    /// injection hook) into a plan.
    pub fn from_die_after(faults: &[Option<u64>]) -> Self {
        let mut plan = FaultPlan::none();
        for (w, f) in faults.iter().enumerate() {
            if let Some(n) = f {
                plan = plan.kill(w, *n);
            }
        }
        plan
    }

    /// Parse a comma-separated directive list (the `NSX_FAULTS` grammar —
    /// see module docs).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let parts: Vec<&str> = item.split(':').collect();
            if parts.len() < 2 {
                return Err(format!("fault directive too short: {item:?}"));
            }
            let w: usize = parts[1]
                .parse()
                .map_err(|_| format!("bad worker index in {item:?}"))?;
            let kv = |key: &str| -> Result<Option<u64>, String> {
                for p in &parts[2..] {
                    if let Some(v) = p.strip_prefix(&format!("{key}=")) {
                        return v
                            .parse()
                            .map(Some)
                            .map_err(|_| format!("bad {key} value in {item:?}"));
                    }
                }
                Ok(None)
            };
            match parts[0] {
                "kill" => {
                    let after = kv("after")?.ok_or(format!("kill needs after= in {item:?}"))?;
                    plan = plan.kill(w, after);
                }
                "delay" => {
                    let ms = kv("ms")?.ok_or(format!("delay needs ms= in {item:?}"))?;
                    let after = kv("after")?.unwrap_or(0);
                    plan = plan.delay(w, after, ms);
                }
                "drop" => {
                    let at = kv("at")?.ok_or(format!("drop needs at= in {item:?}"))?;
                    plan = plan.drop_result(w, at);
                }
                kind => return Err(format!("unknown fault kind {kind:?} in {item:?}")),
            }
        }
        Ok(plan)
    }

    /// The plan selected by the `NSX_FAULTS` environment variable; empty
    /// when unset. A malformed value is reported on stderr and ignored
    /// rather than taking the process down — chaos tooling must never be
    /// the thing that crashes the run.
    pub fn from_env() -> Self {
        match std::env::var("NSX_FAULTS") {
            Ok(s) => match Self::parse(&s) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("NSX_FAULTS ignored: {e}");
                    FaultPlan::none()
                }
            },
            Err(_) => FaultPlan::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::none()
            .kill(1, 3)
            .delay(0, 2, 50)
            .drop_result(2, 4);
        assert_eq!(plan.fault_for(1, 0).kill_after, Some(3));
        assert_eq!(
            plan.fault_for(0, 0).delay,
            Some(Delay {
                after: 2,
                millis: 50
            })
        );
        assert_eq!(plan.fault_for(2, 0).drop_at, Some(4));
        // Out-of-range workers and respawned incarnations are healthy.
        assert!(plan.fault_for(9, 0).is_none());
        assert!(plan.fault_for(1, 1).is_none());
    }

    #[test]
    fn parse_round_trips_the_issue_grammar() {
        let plan = FaultPlan::parse("kill:0:after=3").unwrap();
        assert_eq!(plan.fault_for(0, 0).kill_after, Some(3));

        let plan = FaultPlan::parse("kill:1:after=0, delay:0:ms=20, drop:2:at=5").unwrap();
        assert_eq!(plan.fault_for(1, 0).kill_after, Some(0));
        assert_eq!(
            plan.fault_for(0, 0).delay,
            Some(Delay {
                after: 0,
                millis: 20
            })
        );
        assert_eq!(plan.fault_for(2, 0).drop_at, Some(5));

        let plan = FaultPlan::parse("delay:3:after=2:ms=7").unwrap();
        assert_eq!(
            plan.fault_for(3, 0).delay,
            Some(Delay {
                after: 2,
                millis: 7
            })
        );
    }

    #[test]
    fn parse_rejects_malformed_directives() {
        assert!(FaultPlan::parse("kill").is_err());
        assert!(FaultPlan::parse("kill:x:after=1").is_err());
        assert!(FaultPlan::parse("kill:0").is_err());
        assert!(FaultPlan::parse("explode:0:after=1").is_err());
        assert!(FaultPlan::parse("delay:0:after=2").is_err());
        assert!(FaultPlan::parse("drop:0:at=nope").is_err());
    }

    #[test]
    fn empty_plans() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(!FaultPlan::none().kill(0, 1).is_empty());
        assert_eq!(
            FaultPlan::from_die_after(&[None, Some(2)]),
            FaultPlan::none().kill(1, 2)
        );
    }

    #[test]
    fn delay_for_respects_after() {
        let f = WorkerFault {
            delay: Some(Delay {
                after: 2,
                millis: 10,
            }),
            ..WorkerFault::default()
        };
        assert_eq!(f.delay_for(1), None);
        assert_eq!(f.delay_for(2), Some(Duration::from_millis(10)));
        assert_eq!(f.delay_for(9), Some(Duration::from_millis(10)));
    }
}
