//! Fault injection for the MW worker pool: kill a worker after N jobs,
//! delay its jobs, or drop a result on the wire.
//!
//! This is the chaos-testing harness behind the paper's §4.2 narrative —
//! Condor-style opportunistic pools where "a worker is restarted by the
//! master" after its node is reclaimed mid-task. A [`FaultPlan`] describes
//! deterministic faults per worker slot; the pool's supervisor
//! (`MwPool::supervise`) and the backend's retry loop are expected to make
//! every plan that leaves at least one live worker invisible in the results
//! (see `tests/mw_faults.rs`).
//!
//! Plans can be built programmatically or parsed from the `NSX_FAULTS`
//! environment variable, a comma-separated list of directives:
//!
//! | Directive | Effect |
//! |---|---|
//! | `kill:<w>:after=<n>` | worker `w` dies after executing `n` jobs (the job in hand when it dies is lost) |
//! | `delay:<w>:ms=<d>` | worker `w` sleeps `d` wall-clock ms before every job |
//! | `delay:<w>:after=<n>:ms=<d>` | same, starting with its `n`-th job |
//! | `drop:<w>:at=<n>` | worker `w` executes its `n`-th job but its result is discarded (a lost result message) |
//!
//! With the multi-process transport (`NSX_TRANSPORT=process`, DESIGN.md
//! §12) the plan also accepts *network* faults, injected master-side on the
//! socket link to worker `w` (frame indices count frames sent on that link
//! after the handshake, 0-based):
//!
//! | Directive | Effect |
//! |---|---|
//! | `netdelay:<w>:ms=<d>` | every frame to worker `w` is delayed `d` wall-clock ms before the write |
//! | `netdelay:<w>:after=<n>:ms=<d>` | same, starting with the `n`-th frame |
//! | `netdrop:<w>:at=<n>` | the `n`-th frame to worker `w` is silently dropped (a lost datagramish write) |
//! | `partition:<w>:at=<n>:for=<k>` | frames `n .. n+k` to worker `w` are black-holed while replies still flow — a half-open partition |
//! | `reorder:<w>:at=<n>` | the `n`-th frame to worker `w` is held back and sent *after* the following frame |
//!
//! Network faults only lose or delay *messages*, never state: the master's
//! per-attempt timeout re-dispatches from its stream backups, so every
//! survivable plan is invisible in the results (bit-identical contract).
//!
//! Faults apply only to a worker slot's *first* incarnation: a respawned
//! worker is healthy, matching the restart-the-worker story.

use std::time::Duration;

/// Network faults injected on the master→worker link of the process
/// transport (no effect on the in-process thread pool, which has no wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetFault {
    /// Delay outbound frames (see [`Delay`]; `after` counts frames).
    pub delay: Option<Delay>,
    /// Silently drop the outbound frame with this 0-based index.
    pub drop_at: Option<u64>,
    /// Black-hole the outbound window `[at, at+len)`: a half-open partition
    /// (outbound lost, inbound replies still delivered).
    pub partition: Option<(u64, u64)>,
    /// Hold the outbound frame with this index and send it after its
    /// successor (a reordered delivery).
    pub reorder_at: Option<u64>,
}

impl NetFault {
    /// True when no network fault is injected.
    pub fn is_none(&self) -> bool {
        *self == NetFault::default()
    }

    /// Whether the outbound frame with index `sent` falls in a black-hole
    /// window (drop or partition).
    pub fn swallows(&self, sent: u64) -> bool {
        if self.drop_at == Some(sent) {
            return true;
        }
        self.partition
            .is_some_and(|(at, len)| sent >= at && sent < at.saturating_add(len))
    }

    /// The injected delay before sending frame `sent`, if any.
    pub fn delay_for(&self, sent: u64) -> Option<Duration> {
        self.delay
            .filter(|d| sent >= d.after)
            .map(|d| Duration::from_millis(d.millis))
    }
}

/// A wall-clock delay injected before jobs on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Delay {
    /// First job index (0-based executed count) the delay applies to.
    pub after: u64,
    /// Sleep duration in milliseconds.
    pub millis: u64,
}

/// The faults injected into one worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerFault {
    /// Die (stop pulling work, dropping the in-flight job's result)
    /// immediately after executing this many jobs.
    pub kill_after: Option<u64>,
    /// Sleep before executing jobs (see [`Delay`]).
    pub delay: Option<Delay>,
    /// Execute the job with this 0-based index but discard its result.
    pub drop_at: Option<u64>,
    /// Network faults on this worker's transport link (process transport
    /// only; the in-process pool has no wire to fault).
    pub net: NetFault,
}

impl WorkerFault {
    /// True when no fault is injected.
    pub fn is_none(&self) -> bool {
        *self == WorkerFault::default()
    }

    /// The injected delay for a job with executed-count `executed`, if any.
    pub fn delay_for(&self, executed: u64) -> Option<Duration> {
        self.delay
            .filter(|d| executed >= d.after)
            .map(|d| Duration::from_millis(d.millis))
    }

    /// Render the *worker-side* faults (kill/delay/drop — not the network
    /// faults, which the master injects) as `NSX_FAULTS`-grammar directives
    /// for worker index 0. The process transport passes this to spawned
    /// worker processes via `NSX_WORKER_FAULTS`, so the same plan grammar
    /// drives thread and process chaos. Empty string when nothing applies.
    pub fn to_worker_directives(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.kill_after {
            parts.push(format!("kill:0:after={n}"));
        }
        if let Some(d) = self.delay {
            parts.push(format!("delay:0:after={}:ms={}", d.after, d.millis));
        }
        if let Some(n) = self.drop_at {
            parts.push(format!("drop:0:at={n}"));
        }
        parts.join(",")
    }
}

/// Deterministic per-worker fault injection plan (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<WorkerFault>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.iter().all(WorkerFault::is_none)
    }

    fn slot(&mut self, w: usize) -> &mut WorkerFault {
        if self.faults.len() <= w {
            self.faults.resize(w + 1, WorkerFault::default());
        }
        &mut self.faults[w]
    }

    /// Kill worker `w` after it executes `after` jobs.
    pub fn kill(mut self, w: usize, after: u64) -> Self {
        self.slot(w).kill_after = Some(after);
        self
    }

    /// Delay every job on worker `w` (from its `after`-th) by `millis` ms.
    pub fn delay(mut self, w: usize, after: u64, millis: u64) -> Self {
        self.slot(w).delay = Some(Delay { after, millis });
        self
    }

    /// Drop the result of worker `w`'s `at`-th job (0-based).
    pub fn drop_result(mut self, w: usize, at: u64) -> Self {
        self.slot(w).drop_at = Some(at);
        self
    }

    /// Delay every outbound frame to worker `w` (from its `after`-th) by
    /// `millis` ms (process transport).
    pub fn net_delay(mut self, w: usize, after: u64, millis: u64) -> Self {
        self.slot(w).net.delay = Some(Delay { after, millis });
        self
    }

    /// Drop the `at`-th outbound frame to worker `w` (process transport).
    pub fn net_drop(mut self, w: usize, at: u64) -> Self {
        self.slot(w).net.drop_at = Some(at);
        self
    }

    /// Black-hole outbound frames `at .. at+len` to worker `w` — a half-open
    /// partition (process transport).
    pub fn partition(mut self, w: usize, at: u64, len: u64) -> Self {
        self.slot(w).net.partition = Some((at, len));
        self
    }

    /// Hold the `at`-th outbound frame to worker `w` and deliver it after
    /// its successor (process transport).
    pub fn reorder(mut self, w: usize, at: u64) -> Self {
        self.slot(w).net.reorder_at = Some(at);
        self
    }

    /// The fault spec for worker slot `w`, incarnation `incarnation`.
    /// Respawned workers (incarnation ≥ 1) are healthy.
    pub fn fault_for(&self, w: usize, incarnation: u32) -> WorkerFault {
        if incarnation > 0 {
            return WorkerFault::default();
        }
        self.faults.get(w).copied().unwrap_or_default()
    }

    /// Convert the legacy per-worker `die_after` array (the old ad-hoc
    /// injection hook) into a plan.
    pub fn from_die_after(faults: &[Option<u64>]) -> Self {
        let mut plan = FaultPlan::none();
        for (w, f) in faults.iter().enumerate() {
            if let Some(n) = f {
                plan = plan.kill(w, *n);
            }
        }
        plan
    }

    /// Parse a comma-separated directive list (the `NSX_FAULTS` grammar —
    /// see module docs).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for item in s.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            let parts: Vec<&str> = item.split(':').collect();
            if parts.len() < 2 {
                return Err(format!("fault directive too short: {item:?}"));
            }
            let w: usize = parts[1]
                .parse()
                .map_err(|_| format!("bad worker index in {item:?}"))?;
            let kv = |key: &str| -> Result<Option<u64>, String> {
                for p in &parts[2..] {
                    if let Some(v) = p.strip_prefix(&format!("{key}=")) {
                        return v
                            .parse()
                            .map(Some)
                            .map_err(|_| format!("bad {key} value in {item:?}"));
                    }
                }
                Ok(None)
            };
            match parts[0] {
                "kill" => {
                    let after = kv("after")?.ok_or(format!("kill needs after= in {item:?}"))?;
                    plan = plan.kill(w, after);
                }
                "delay" => {
                    let ms = kv("ms")?.ok_or(format!("delay needs ms= in {item:?}"))?;
                    let after = kv("after")?.unwrap_or(0);
                    plan = plan.delay(w, after, ms);
                }
                "drop" => {
                    let at = kv("at")?.ok_or(format!("drop needs at= in {item:?}"))?;
                    plan = plan.drop_result(w, at);
                }
                "netdelay" => {
                    let ms = kv("ms")?.ok_or(format!("netdelay needs ms= in {item:?}"))?;
                    let after = kv("after")?.unwrap_or(0);
                    plan = plan.net_delay(w, after, ms);
                }
                "netdrop" => {
                    let at = kv("at")?.ok_or(format!("netdrop needs at= in {item:?}"))?;
                    plan = plan.net_drop(w, at);
                }
                "partition" => {
                    let at = kv("at")?.ok_or(format!("partition needs at= in {item:?}"))?;
                    let len = kv("for")?.ok_or(format!("partition needs for= in {item:?}"))?;
                    plan = plan.partition(w, at, len);
                }
                "reorder" => {
                    let at = kv("at")?.ok_or(format!("reorder needs at= in {item:?}"))?;
                    plan = plan.reorder(w, at);
                }
                kind => return Err(format!("unknown fault kind {kind:?} in {item:?}")),
            }
        }
        Ok(plan)
    }

    /// The plan selected by the `NSX_FAULTS` environment variable; empty
    /// when unset. A malformed value is reported on stderr and ignored
    /// rather than taking the process down — chaos tooling must never be
    /// the thing that crashes the run.
    pub fn from_env() -> Self {
        match std::env::var("NSX_FAULTS") {
            Ok(s) => match Self::parse(&s) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("NSX_FAULTS ignored: {e}");
                    FaultPlan::none()
                }
            },
            Err(_) => FaultPlan::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::none()
            .kill(1, 3)
            .delay(0, 2, 50)
            .drop_result(2, 4);
        assert_eq!(plan.fault_for(1, 0).kill_after, Some(3));
        assert_eq!(
            plan.fault_for(0, 0).delay,
            Some(Delay {
                after: 2,
                millis: 50
            })
        );
        assert_eq!(plan.fault_for(2, 0).drop_at, Some(4));
        // Out-of-range workers and respawned incarnations are healthy.
        assert!(plan.fault_for(9, 0).is_none());
        assert!(plan.fault_for(1, 1).is_none());
    }

    #[test]
    fn parse_round_trips_the_issue_grammar() {
        let plan = FaultPlan::parse("kill:0:after=3").unwrap();
        assert_eq!(plan.fault_for(0, 0).kill_after, Some(3));

        let plan = FaultPlan::parse("kill:1:after=0, delay:0:ms=20, drop:2:at=5").unwrap();
        assert_eq!(plan.fault_for(1, 0).kill_after, Some(0));
        assert_eq!(
            plan.fault_for(0, 0).delay,
            Some(Delay {
                after: 0,
                millis: 20
            })
        );
        assert_eq!(plan.fault_for(2, 0).drop_at, Some(5));

        let plan = FaultPlan::parse("delay:3:after=2:ms=7").unwrap();
        assert_eq!(
            plan.fault_for(3, 0).delay,
            Some(Delay {
                after: 2,
                millis: 7
            })
        );
    }

    #[test]
    fn parse_rejects_malformed_directives() {
        assert!(FaultPlan::parse("kill").is_err());
        assert!(FaultPlan::parse("kill:x:after=1").is_err());
        assert!(FaultPlan::parse("kill:0").is_err());
        assert!(FaultPlan::parse("explode:0:after=1").is_err());
        assert!(FaultPlan::parse("delay:0:after=2").is_err());
        assert!(FaultPlan::parse("drop:0:at=nope").is_err());
    }

    #[test]
    fn empty_plans() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(!FaultPlan::none().kill(0, 1).is_empty());
        assert_eq!(
            FaultPlan::from_die_after(&[None, Some(2)]),
            FaultPlan::none().kill(1, 2)
        );
    }

    #[test]
    fn parse_network_fault_directives() {
        let plan = FaultPlan::parse(
            "netdelay:0:ms=5, netdrop:1:at=2, partition:2:at=3:for=4, reorder:0:at=7",
        )
        .unwrap();
        assert_eq!(
            plan.fault_for(0, 0).net.delay,
            Some(Delay {
                after: 0,
                millis: 5
            })
        );
        assert_eq!(plan.fault_for(1, 0).net.drop_at, Some(2));
        assert_eq!(plan.fault_for(2, 0).net.partition, Some((3, 4)));
        assert_eq!(plan.fault_for(0, 0).net.reorder_at, Some(7));
        // Respawned incarnations get a healthy link too.
        assert!(plan.fault_for(1, 1).net.is_none());

        assert!(FaultPlan::parse("netdelay:0:after=1").is_err());
        assert!(FaultPlan::parse("partition:0:at=1").is_err());
        assert!(FaultPlan::parse("netdrop:0:ms=1").is_err());
    }

    #[test]
    fn net_fault_windows() {
        let f = NetFault {
            drop_at: Some(1),
            partition: Some((4, 2)),
            ..NetFault::default()
        };
        assert!(!f.swallows(0));
        assert!(f.swallows(1));
        assert!(!f.swallows(3));
        assert!(f.swallows(4) && f.swallows(5));
        assert!(!f.swallows(6));
        assert!(NetFault::default().is_none());
    }

    #[test]
    fn worker_directives_round_trip_through_parse() {
        let plan = FaultPlan::none().kill(2, 3).delay(2, 1, 20).net_drop(2, 5);
        let f = plan.fault_for(2, 0);
        let rendered = f.to_worker_directives();
        // Network faults are master-side: they must not re-apply in the
        // worker process.
        let reparsed = FaultPlan::parse(&rendered).unwrap().fault_for(0, 0);
        assert_eq!(reparsed.kill_after, Some(3));
        assert_eq!(
            reparsed.delay,
            Some(Delay {
                after: 1,
                millis: 20
            })
        );
        assert!(reparsed.net.is_none());
        assert_eq!(WorkerFault::default().to_worker_directives(), "");
    }

    #[test]
    fn delay_for_respects_after() {
        let f = WorkerFault {
            delay: Some(Delay {
                after: 2,
                millis: 10,
            }),
            ..WorkerFault::default()
        };
        assert_eq!(f.delay_for(1), None);
        assert_eq!(f.delay_for(2), Some(Duration::from_millis(10)));
        assert_eq!(f.delay_for(9), Some(Duration::from_millis(10)));
    }
}
