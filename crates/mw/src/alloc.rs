//! Processor-allocation accounting for the MW hierarchy (§3.1, Table 3.3).
//!
//! A `d`-dimensional optimization with `Ns` simulations per vertex deploys:
//!
//! * 1 master,
//! * `d + 3` workers (one per simplex vertex plus two trial vertices),
//! * `d + 3` servers (one per worker, in its own MPI environment),
//! * `(d + 3) · Ns` clients (the actual simulations),
//!
//! for a total of `d·Ns + 3·Ns + 2d + 7` processes/cores.

/// The MW process/core allocation for one optimization deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Problem dimensionality `d`.
    pub d: usize,
    /// Simulations per vertex `Ns`.
    pub ns: usize,
}

impl Allocation {
    /// Allocation for a `d`-dimensional problem with `ns` simulations per
    /// vertex.
    pub fn new(d: usize, ns: usize) -> Self {
        assert!(d >= 1 && ns >= 1);
        Allocation { d, ns }
    }

    /// Number of master processes (always 1).
    pub fn masters(&self) -> usize {
        1
    }

    /// Number of worker processes: `d + 3` (d+1 vertices + 2 trials).
    pub fn workers(&self) -> usize {
        self.d + 3
    }

    /// Number of server processes: one per worker.
    pub fn servers(&self) -> usize {
        self.d + 3
    }

    /// Number of client processes: `(d + 3) · Ns`.
    pub fn clients(&self) -> usize {
        (self.d + 3) * self.ns
    }

    /// Total processes: `d·Ns + 3·Ns + 2d + 7` (paper §3.1).
    pub fn total(&self) -> usize {
        self.d * self.ns + 3 * self.ns + 2 * self.d + 7
    }

    /// Number of MPI jobs: `d + 4` (the MW job plus one client-server job
    /// per worker).
    pub fn mpi_jobs(&self) -> usize {
        self.d + 4
    }

    /// The paper's suggested lower bound for an advanced implementation:
    /// `(d + 3) · Ns` cores (§3.1).
    pub fn minimal_cores(&self) -> usize {
        (self.d + 3) * self.ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_total_equals_parts() {
        for d in [2, 3, 4, 20, 50, 100] {
            for ns in [1, 2, 6] {
                let a = Allocation::new(d, ns);
                assert_eq!(
                    a.total(),
                    a.masters() + a.workers() + a.servers() + a.clients(),
                    "d={d} ns={ns}"
                );
            }
        }
    }

    #[test]
    fn table_3_3_rows() {
        // The exact rows of Table 3.3 (Ns = 1).
        for (d, workers, servers, clients, total) in [
            (20, 23, 23, 23, 70),
            (50, 53, 53, 53, 160),
            (100, 103, 103, 103, 310),
        ] {
            let a = Allocation::new(d, 1);
            assert_eq!(a.workers(), workers);
            assert_eq!(a.servers(), servers);
            assert_eq!(a.clients(), clients);
            assert_eq!(a.total(), total);
        }
    }

    #[test]
    fn mpi_jobs_and_minimal_cores() {
        let a = Allocation::new(3, 6);
        assert_eq!(a.mpi_jobs(), 7);
        assert_eq!(a.minimal_cores(), 36);
    }
}
