//! Adapter: run any [`StochasticObjective`]'s sampling on MW workers.
//!
//! [`MwObjective`] wraps an objective so that every `extend` of one of its
//! streams executes on a worker thread instead of the master thread; the
//! stream state is shipped to the worker and back, mirroring the
//! pack→send→compute→recv cycle of the original MPI implementation. The
//! optimizer code (the master) is unchanged — it just sees a
//! `StochasticObjective`.

use crate::backend::ship_extend;
use crate::pool::{MwPool, WorkerLost};
use std::sync::Arc;
use stoch_eval::backend::StreamJob;
use stoch_eval::objective::{Estimate, SampleStream, StochasticObjective};

/// An objective whose sampling executes on an MW worker pool.
///
/// Do not drive an `MwObjective` through a
/// [`ThreadedBackend`](crate::backend::ThreadedBackend) on the same pool:
/// its streams dispatch to the pool from inside `extend`, so a batch job
/// would block on its own pool (see `crate::backend` docs). Keep the
/// optimizer on the default serial backend when using this adapter.
pub struct MwObjective<F> {
    inner: Arc<F>,
    pool: Arc<MwPool>,
}

impl<F> MwObjective<F> {
    /// Wrap `inner`, dispatching sampling to `pool`.
    pub fn new(inner: F, pool: Arc<MwPool>) -> Self {
        MwObjective {
            inner: Arc::new(inner),
            pool,
        }
    }

    /// The shared worker pool.
    pub fn pool(&self) -> &Arc<MwPool> {
        &self.pool
    }
}

/// A sampling stream whose `extend` runs on a worker.
#[derive(Clone)]
pub struct MwStream<S> {
    state: Option<S>,
    pool: Arc<MwPool>,
}

impl<S: SampleStream + 'static> SampleStream for MwStream<S> {
    fn extend(&mut self, dt: f64) {
        // Ship the state to a worker, sample there, ship it back — the same
        // primitive the batch backend fans out with. A clone stays behind
        // so a lost worker costs a re-execution, never the stream.
        let Some(stream) = self.state.take() else {
            unreachable!("MwStream state is always restored after extend")
        };
        let backup = stream.clone();
        match ship_extend(
            &self.pool,
            StreamJob {
                slot: 0,
                dt,
                stream,
            },
        )
        .recv()
        {
            Ok(job) => self.state = Some(job.stream),
            Err(WorkerLost) => {
                // Reap/respawn for future extends, then fall back inline:
                // the clone carries the RNG, so this reproduces exactly
                // what the worker would have computed (DESIGN.md §9).
                self.pool.supervise();
                let mut stream = backup;
                stream.extend(dt);
                self.state = Some(stream);
            }
        }
    }

    fn estimate(&self) -> Estimate {
        match &self.state {
            Some(s) => s.estimate(),
            None => unreachable!("MwStream state is always restored after extend"),
        }
    }

    // `save_state`/`load_state` keep the trait defaults (unsupported): a
    // restored stream could not rebuild its pool handle from bytes alone, so
    // checkpoint/resume runs drive the pool through the `ThreadedBackend`
    // seam instead of this adapter (engine state then lives master-side).

    fn nonfinite_samples(&self) -> u64 {
        match &self.state {
            Some(s) => s.nonfinite_samples(),
            None => unreachable!("MwStream state is always restored after extend"),
        }
    }
}

impl<F> StochasticObjective for MwObjective<F>
where
    F: StochasticObjective + Send + Sync + 'static,
{
    type Stream = MwStream<F::Stream>;

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn open(&self, x: &[f64], seed: u64) -> Self::Stream {
        MwStream {
            state: Some(self.inner.open(x, seed)),
            pool: Arc::clone(&self.pool),
        }
    }

    fn true_value(&self, x: &[f64]) -> Option<f64> {
        self.inner.true_value(x)
    }

    fn pool_token(&self) -> Option<usize> {
        Some(Arc::as_ptr(&self.pool) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_simplex::prelude::*;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::{ConstantNoise, ZeroNoise};
    use stoch_eval::objective::Objective;
    use stoch_eval::sampler::Noisy;

    #[test]
    fn mw_stream_matches_local_stream() {
        // Same seeds => the MW-dispatched stream must produce exactly the
        // same estimates as a locally-driven one.
        let local = Noisy::new(Rosenbrock::new(2), ConstantNoise(5.0));
        let pool = Arc::new(MwPool::new(2));
        let remote = MwObjective::new(Noisy::new(Rosenbrock::new(2), ConstantNoise(5.0)), pool);
        let mut a = local.open(&[0.5, 0.5], 99);
        let mut b = remote.open(&[0.5, 0.5], 99);
        for _ in 0..5 {
            a.extend(2.0);
            b.extend(2.0);
            let (ea, eb) = (a.estimate(), b.estimate());
            assert_eq!(ea.value, eb.value);
            assert_eq!(ea.std_err, eb.std_err);
            assert_eq!(ea.time, eb.time);
        }
    }

    #[test]
    fn full_optimization_runs_over_the_pool() {
        let pool = Arc::new(MwPool::new(4));
        let obj = MwObjective::new(Noisy::new(Rosenbrock::new(2), ZeroNoise), Arc::clone(&pool));
        let init = init::random_uniform(2, -2.0, 2.0, 42);
        let res = Det::new().run(
            &obj,
            init,
            Termination::tolerance(1e-12),
            TimeMode::Parallel,
            7,
        );
        assert!(Rosenbrock::new(2).value(&res.best_point) < 1e-5);
        // The pool actually did the evaluations.
        assert!(pool.job_counts().iter().sum::<u64>() > 0);
    }
}
