//! `NoiseDistribution` draws against their analytic oracles.
//!
//! Each distribution's `unit_variate` sequence is checked against closed-form
//! moments: mean and variance where they exist (Gaussian; Student-t with
//! ν > 4 after standardization; ε-contamination with known mixture inflation),
//! and the *median* for heavy-tailed shapes (ν ≤ 4), where the sample mean is
//! no longer a trustworthy statistic — exactly the failure mode the robust
//! estimators exist for.

use proptest::prelude::*;
use stoch_eval::NoiseDistribution;

fn draws(dist: &NoiseDistribution, seed: u64, n: u64) -> Vec<f64> {
    (0..n).map(|i| dist.unit_variate(seed, i)).collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gaussian_unit_variates_are_standard_normal(seed in 0u64..10_000) {
        let xs = draws(&NoiseDistribution::gaussian(), seed, 20_000);
        let (m, v) = (mean(&xs), variance(&xs));
        // 20k standard normals: se(mean) ≈ 0.007, se(var) ≈ 0.01.
        prop_assert!(m.abs() < 0.05, "mean {m}");
        prop_assert!((v - 1.0).abs() < 0.08, "variance {v}");
    }

    #[test]
    fn student_t_light_tail_is_standardized(
        seed in 0u64..10_000,
        nu in 5.0f64..30.0,
    ) {
        // ν > 4: the standardized t has mean 0, variance 1, and a finite
        // fourth moment, so sample moments converge at the usual rate.
        let xs = draws(&NoiseDistribution::student_t(nu), seed, 20_000);
        let (m, v) = (mean(&xs), variance(&xs));
        prop_assert!(m.abs() < 0.08, "mean {m} at nu={nu}");
        // var(sample variance) grows as ν ↓ 4; keep the band generous.
        prop_assert!((v - 1.0).abs() < 0.35, "variance {v} at nu={nu}");
    }

    #[test]
    fn student_t_heavy_tail_has_zero_median(
        seed in 0u64..10_000,
        nu in 2.1f64..4.0,
    ) {
        // ν ≤ 4: the fourth (and near ν=2 the second) moment diverges — the
        // sample mean is untrustworthy, but the t distribution is symmetric,
        // so the median oracle is exactly 0.
        let xs = draws(&NoiseDistribution::student_t(nu), seed, 20_000);
        prop_assert!(median(&xs).abs() < 0.05, "median {} at nu={nu}", median(&xs));
        // The draws really are heavier than Gaussian: count |x| > 4, which
        // for a standard normal has probability ~6e-5 (expect ~1 in 20k).
        let tail = xs.iter().filter(|x| x.abs() > 4.0).count();
        prop_assert!(tail > 10, "only {tail} draws beyond 4 at nu={nu}");
    }

    #[test]
    fn contamination_inflates_variance_by_the_mixture_formula(
        seed in 0u64..10_000,
    ) {
        // (1-ε)·N(0,1) + ε·N(0,k²): variance = 1 - ε + ε·k².
        let (eps, k) = (0.05, 10.0);
        let dist = NoiseDistribution::gaussian().with_contamination(eps, k);
        let xs = draws(&dist, seed, 50_000);
        let expect = 1.0 - eps + eps * k * k;
        let v = variance(&xs);
        prop_assert!(m_ok(mean(&xs)), "mean {}", mean(&xs));
        prop_assert!(
            (v / expect - 1.0).abs() < 0.35,
            "variance {v}, mixture predicts {expect}"
        );
        // Spike frequency matches ε: the count is Binomial(50k, ~ε-ish).
        // Count draws beyond 5σ of the clean core — essentially all spikes,
        // essentially no clean draws.
        let spikes = xs.iter().filter(|x| x.abs() > 5.0).count() as f64;
        let frac = spikes / xs.len() as f64;
        prop_assert!(frac > 0.02 && frac < 0.06, "spike fraction {frac}");
    }

    #[test]
    fn drift_preserves_the_long_run_median(seed in 0u64..10_000) {
        // Sinusoidal σ(t) and cosine bias average out over whole periods:
        // the median over many periods stays at 0. Drift enters through
        // `observe`, not `unit_variate`, so sample via observe at f = 0.
        let dist = NoiseDistribution::drifting(stoch_eval::DriftSpec::default_spec());
        let xs: Vec<f64> = (0..20_000u64)
            .map(|i| dist.observe(seed, i, (i + 1) as f64, 0.0, 1.0))
            .collect();
        prop_assert!(median(&xs).abs() < 0.06, "median {}", median(&xs));
    }
}

fn m_ok(m: f64) -> bool {
    m.abs() < 0.1
}

#[test]
fn unit_variates_are_a_pure_function_of_seed_and_index() {
    // The determinism keystone: draw i depends only on (seed, i) — any order,
    // any interleaving, any repetition gives identical bits.
    for dist in [
        NoiseDistribution::gaussian(),
        NoiseDistribution::student_t(3.0),
        NoiseDistribution::gaussian().with_contamination(0.05, 20.0),
    ] {
        let forward: Vec<u64> = (0..500u64)
            .map(|i| dist.unit_variate(7, i).to_bits())
            .collect();
        let backward: Vec<u64> = (0..500u64)
            .rev()
            .map(|i| dist.unit_variate(7, i).to_bits())
            .collect();
        let rev: Vec<u64> = backward.into_iter().rev().collect();
        assert_eq!(forward, rev, "order-dependent draws for {}", dist.label());
    }
}
