//! The sufficient-statistics fast path in `EmpiricalStream::extend`
//! (taken when `ceil(dt/dt_sample) > 1`) must agree with the per-sample
//! Welford slow path. Both paths consume the identical variate sequence,
//! so any disagreement is pure floating-point reassociation — bounded
//! here at 1e-12 relative.

use proptest::prelude::*;
use stoch_eval::objective::SampleStream;
use stoch_eval::sampler::EmpiricalStream;

/// Drive a same-seed stream through the slow path only: `extend(dt_sample)`
/// runs one batch per call, which always takes the per-sample push branch.
fn slow_reference(
    f: f64,
    sigma0: f64,
    dt_sample: f64,
    seed: u64,
    total_batches: u64,
) -> (f64, f64) {
    let mut s = EmpiricalStream::new(f, sigma0, dt_sample, seed);
    for _ in 0..total_batches {
        s.extend(dt_sample);
    }
    let e = s.estimate();
    (e.value, e.std_err)
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_path_matches_per_sample_welford(
        f in -100.0f64..100.0,
        sigma0 in 0.01f64..50.0,
        dt_sample in 0.01f64..2.0,
        seed in 0u64..1_000,
        // A sequence of extensions, each covering 2..=400 batches so every
        // extend() call takes the fast path; total stays ≤ ~2000 samples to
        // keep accumulated rounding within the 1e-12 budget.
        batch_counts in collection::vec(2u64..=400, 1..6),
    ) {
        let mut fast = EmpiricalStream::new(f, sigma0, dt_sample, seed);
        let mut total = 0u64;
        for &b in &batch_counts {
            // dt chosen so ceil(dt/dt_sample) == b exactly.
            let dt = (b as f64 - 0.5) * dt_sample;
            fast.extend(dt);
            total += b;
        }
        let e = fast.estimate();
        let (slow_mean, slow_err) = slow_reference(f, sigma0, dt_sample, seed, total);
        prop_assert!(
            rel_close(e.value, slow_mean, 1e-12),
            "mean: fast {} vs slow {}", e.value, slow_mean
        );
        prop_assert!(
            rel_close(e.std_err, slow_err, 1e-12),
            "std_err: fast {} vs slow {}", e.std_err, slow_err
        );
        prop_assert_eq!(e.time, total as f64 * dt_sample);
    }

    #[test]
    fn fast_path_composes_with_single_sample_extensions(
        f in -10.0f64..10.0,
        sigma0 in 0.1f64..10.0,
        seed in 0u64..1_000,
    ) {
        // Interleave slow (1-batch) and fast (multi-batch) extensions; the
        // merged accumulator must match an all-slow run of the same total.
        let dt_sample = 0.5;
        let mut mixed = EmpiricalStream::new(f, sigma0, dt_sample, seed);
        mixed.extend(dt_sample);        // 1 batch  (slow)
        mixed.extend(10.0 * dt_sample); // 10 batches (fast)
        mixed.extend(dt_sample);        // 1 batch  (slow)
        mixed.extend(40.0 * dt_sample); // 40 batches (fast)
        let e = mixed.estimate();
        let (slow_mean, slow_err) = slow_reference(f, sigma0, dt_sample, seed, 52);
        prop_assert!(rel_close(e.value, slow_mean, 1e-12));
        prop_assert!(rel_close(e.std_err, slow_err, 1e-12));
    }

    #[test]
    fn zero_noise_fast_path_is_exact(
        f in -100.0f64..100.0,
        batches in 2u64..500,
    ) {
        let mut s = EmpiricalStream::new(f, 0.0, 1.0, 7);
        s.extend(batches as f64 - 0.25);
        let e = s.estimate();
        prop_assert_eq!(e.value, f);
        prop_assert_eq!(e.std_err, 0.0);
    }
}
