//! A tiny hand-rolled binary codec for checkpoint state.
//!
//! The build environment is offline (no serde), so durable run state is
//! serialized with an explicit little-endian writer/reader pair. The format
//! is deliberately primitive: fixed-width integers, `f64` as raw IEEE-754
//! bits (so restored values are *bit-identical*, including `-0.0` and
//! payload NaNs), and length-prefixed nested blocks. Integrity and
//! versioning are handled one layer up (`noisy-simplex::checkpoint` frames
//! payloads with a magic, a version, and a CRC-32); this module only
//! guarantees that a well-formed byte string round-trips exactly and a
//! malformed one yields a typed [`CodecError`] instead of a panic.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;

/// A decoding (or unsupported-operation) failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bytes mid-field.
    Eof {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes remaining in the buffer.
        have: usize,
    },
    /// A tag byte did not name a known variant.
    Tag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A decoded value failed a structural sanity check.
    Invalid {
        /// What was being decoded.
        what: &'static str,
    },
    /// Bytes remained after a decode that should have consumed everything.
    Trailing {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// The stream type does not implement state persistence.
    Unsupported {
        /// The type (or operation) lacking support.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof { needed, have } => {
                write!(
                    f,
                    "unexpected end of payload: needed {needed} bytes, have {have}"
                )
            }
            CodecError::Tag { what, tag } => write!(f, "unknown tag {tag} while decoding {what}"),
            CodecError::Invalid { what } => write!(f, "invalid encoded value for {what}"),
            CodecError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
            CodecError::Unsupported { what } => {
                write!(f, "state persistence is not supported by {what}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Little-endian binary writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw IEEE-754 bits (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append an `Option<f64>` (presence byte + bits).
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Append an `Option<u64>` (presence byte + value).
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Append a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Append a length-prefixed byte block.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }
}

/// Little-endian binary reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Eof {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `bool` (rejecting bytes other than 0/1).
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::Tag { what: "bool", tag }),
        }
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.take_u64()? as i64)
    }

    /// Read an `f64` from raw bits.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read an `Option<f64>`.
    pub fn take_opt_f64(&mut self) -> Result<Option<f64>, CodecError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_f64()?)),
            tag => Err(CodecError::Tag {
                what: "Option<f64>",
                tag,
            }),
        }
    }

    /// Read an `Option<u64>`.
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_u64()?)),
            tag => Err(CodecError::Tag {
                what: "Option<u64>",
                tag,
            }),
        }
    }

    /// Read a length-prefixed `f64` vector. The declared length is bounded
    /// by the remaining bytes, so a corrupt length cannot trigger a huge
    /// allocation.
    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.take_u64()? as usize;
        if n.checked_mul(8)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(CodecError::Eof {
                needed: n.saturating_mul(8),
                have: self.remaining(),
            });
        }
        let mut vs = Vec::with_capacity(n);
        for _ in 0..n {
            vs.push(self.take_f64()?);
        }
        Ok(vs)
    }

    /// Read a length-prefixed byte block.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.take_u64()? as usize;
        self.take(n)
    }

    /// Assert that every byte was consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Trailing {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `data`.
///
/// Bitwise implementation — checkpoint payloads are kilobytes, so a lookup
/// table would buy nothing measurable.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_primitive() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_opt_f64(None);
        w.put_opt_f64(Some(2.5));
        w.put_opt_u64(Some(9));
        w.put_f64_slice(&[1.0, f64::INFINITY]);
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_opt_f64().unwrap(), None);
        assert_eq!(r.take_opt_f64().unwrap(), Some(2.5));
        assert_eq!(r.take_opt_u64().unwrap(), Some(9));
        let vs = r.take_f64_vec().unwrap();
        assert_eq!(vs[0], 1.0);
        assert!(vs[1].is_infinite());
        assert_eq!(r.take_bytes().unwrap(), b"abc");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = Writer::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(matches!(r.take_u64(), Err(CodecError::Eof { .. })));
    }

    #[test]
    fn corrupt_length_prefix_cannot_overallocate() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // absurd element count
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.take_f64_vec(), Err(CodecError::Eof { .. })));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let bytes = [3u8];
        assert!(matches!(
            Reader::new(&bytes).take_bool(),
            Err(CodecError::Tag { .. })
        ));
        assert!(matches!(
            Reader::new(&bytes).take_opt_f64(),
            Err(CodecError::Tag { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(&[0u8; 3]);
        assert_eq!(r.finish(), Err(CodecError::Trailing { remaining: 3 }));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Sensitivity: one flipped bit changes the sum.
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
    }
}
