//! Virtual-time accounting.
//!
//! The paper's experiments are reported against *sampling time*: the
//! simulated wall-clock time spent evaluating vertices (`~10⁴ s` update
//! timescales). We reproduce those timescales without waiting by keeping a
//! virtual clock. Two accounting modes mirror the deployment choices:
//!
//! * [`TimeMode::Parallel`] — the MW deployment: all vertices sample
//!   concurrently on their own workers, so a round that extends several
//!   streams by `dt` advances the clock by `max(dt) = dt`.
//! * [`TimeMode::Serial`] — a single-processor deployment: the clock advances
//!   by the *sum* of all sampling performed.

/// How concurrent sampling rounds map onto elapsed virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeMode {
    /// Concurrent vertices: elapsed time of a round is the max increment.
    Parallel,
    /// Single processor: elapsed time is the sum of all increments.
    Serial,
}

/// A virtual clock that aggregates sampling rounds.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    mode: TimeMode,
    elapsed: f64,
    round_max: f64,
    round_sum: f64,
    in_round: bool,
}

impl VirtualClock {
    /// Create a clock in the given accounting mode.
    pub fn new(mode: TimeMode) -> Self {
        VirtualClock {
            mode,
            elapsed: 0.0,
            round_max: 0.0,
            round_sum: 0.0,
            in_round: false,
        }
    }

    /// The accounting mode.
    pub fn mode(&self) -> TimeMode {
        self.mode
    }

    /// Rebuild a clock mid-run from persisted state. Checkpoints are only
    /// taken between rounds, so `mode` and `elapsed` are the complete state
    /// (the per-round accumulators are always quiescent at snapshot time).
    pub fn with_elapsed(mode: TimeMode, elapsed: f64) -> Self {
        VirtualClock {
            mode,
            elapsed,
            round_max: 0.0,
            round_sum: 0.0,
            in_round: false,
        }
    }

    /// Begin a concurrent sampling round.
    pub fn begin_round(&mut self) {
        debug_assert!(!self.in_round, "nested sampling rounds");
        self.in_round = true;
        self.round_max = 0.0;
        self.round_sum = 0.0;
    }

    /// Record that one stream was extended by `dt` within the current round.
    /// Outside a round, the charge is applied immediately (a solo extension).
    pub fn charge(&mut self, dt: f64) {
        assert!(dt >= 0.0);
        if self.in_round {
            self.round_max = self.round_max.max(dt);
            self.round_sum += dt;
        } else {
            self.elapsed += dt;
        }
    }

    /// End the round and fold it into elapsed time per the mode.
    pub fn end_round(&mut self) {
        debug_assert!(self.in_round, "end_round without begin_round");
        self.in_round = false;
        self.elapsed += match self.mode {
            TimeMode::Parallel => self.round_max,
            TimeMode::Serial => self.round_sum,
        };
    }

    /// Total elapsed virtual time.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_round_takes_max() {
        let mut c = VirtualClock::new(TimeMode::Parallel);
        c.begin_round();
        c.charge(1.0);
        c.charge(5.0);
        c.charge(2.0);
        c.end_round();
        assert_eq!(c.elapsed(), 5.0);
    }

    #[test]
    fn serial_round_takes_sum() {
        let mut c = VirtualClock::new(TimeMode::Serial);
        c.begin_round();
        c.charge(1.0);
        c.charge(5.0);
        c.charge(2.0);
        c.end_round();
        assert_eq!(c.elapsed(), 8.0);
    }

    #[test]
    fn solo_charge_applies_immediately() {
        let mut c = VirtualClock::new(TimeMode::Parallel);
        c.charge(3.0);
        assert_eq!(c.elapsed(), 3.0);
    }

    #[test]
    fn rounds_accumulate() {
        let mut c = VirtualClock::new(TimeMode::Parallel);
        for i in 1..=4 {
            c.begin_round();
            c.charge(i as f64);
            c.end_round();
        }
        assert_eq!(c.elapsed(), 10.0);
    }

    #[test]
    fn empty_round_is_free() {
        let mut c = VirtualClock::new(TimeMode::Serial);
        c.begin_round();
        c.end_round();
        assert_eq!(c.elapsed(), 0.0);
    }
}
