//! Sampling streams: the consistent Gaussian model of Eq. 1.1–1.2, and an
//! empirical batch-based estimator.
//!
//! # Consistency
//!
//! The paper's noise model says the observed value after sampling time `t` is
//! `f + ε`, `ε ~ N(0, σ0²/t)`. When an optimizer "resamples" a point it is
//! *continuing* the same simulation, so the new estimate must be a refinement
//! of the old one, not an independent redraw. [`GaussianStream`] realises
//! this with a Brownian accumulator: each increment `dt` adds
//! `N(f·dt, σ0²·dt)` to a running sum `S`, and the estimate is `S/t` which
//! has exactly variance `σ0²/t`. Successive estimates are correlated in the
//! way a true running average is.

use crate::codec::{CodecError, Reader, Writer};
use crate::noise::{NoiseDistribution, NoiseModel};
use crate::objective::{Estimate, Objective, SampleStream, StochasticObjective};
use crate::rng::rng_from_seed;
use crate::stats::{BlockMeans, EstimatorChoice, Moments, TailReport};
use rand::rngs::StdRng;
use rand::Rng;

/// Draw a standard normal variate via the Marsaglia polar method.
///
/// We implement this by hand to keep the workspace on the approved
/// dependency set (`rand` only, no `rand_distr`). Each accepted trial
/// produces two independent normals; this free function discards the
/// second — stream-owned sampling goes through [`NormalSource`], which
/// caches it.
#[inline]
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// A standard-normal source that keeps the spare Marsaglia variate.
///
/// The polar method yields two independent normals (`u·f` and `v·f`) per
/// accepted trial; caching the second halves the RNG and transcendental
/// cost for per-unit-sample loops like [`EmpiricalStream::extend`].
/// Cloning carries both the RNG state *and* the cached spare, so
/// clone-and-replay (the `mw` retry path) reproduces the exact variate
/// sequence — the cross-backend bit-identical contract is preserved.
///
/// Note the variate *sequence* differs from repeated [`standard_normal`]
/// calls on the same seed (that path discards spares), so seed-level
/// trajectories shift wherever a stream adopts this source.
#[derive(Debug, Clone)]
pub struct NormalSource {
    rng: StdRng,
    spare: Option<f64>,
}

impl NormalSource {
    /// A source seeded like [`rng_from_seed`], with no cached spare.
    pub fn new(seed: u64) -> Self {
        NormalSource {
            rng: rng_from_seed(seed),
            spare: None,
        }
    }

    /// Adopt an existing RNG mid-stream (no cached spare). Lets a caller
    /// that has been drawing through [`standard_normal`] hand its generator
    /// over to a spare-caching source without reseeding.
    pub fn from_rng(rng: StdRng) -> Self {
        NormalSource { rng, spare: None }
    }

    /// Draw one standard normal variate.
    #[inline]
    pub fn sample(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u: f64 = self.rng.gen_range(-1.0..1.0);
            let v: f64 = self.rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Fill `out` with standard normal variates — the bulk path for
    /// many-draw consumers (velocity initialization, per-step thermostat
    /// noise, batched unit samples).
    ///
    /// The draw order is *bit-exact* with `out.len()` successive
    /// [`sample`](Self::sample) calls: a cached spare is emitted first, each
    /// accepted polar trial then fills two slots, and a trailing odd variate
    /// leaves its partner cached — so mixing `fill` and `sample` calls in
    /// any interleaving yields one and the same variate sequence. The win is
    /// dispatch, not distribution: one bounds-checked loop, no per-draw
    /// `Option` churn, and the polar loop's second output is always
    /// consumed in-place while hot.
    pub fn fill(&mut self, out: &mut [f64]) {
        let mut at = 0;
        if at < out.len() {
            if let Some(z) = self.spare.take() {
                out[at] = z;
                at += 1;
            }
        }
        while at < out.len() {
            let (u, v, f) = loop {
                let u: f64 = self.rng.gen_range(-1.0..1.0);
                let v: f64 = self.rng.gen_range(-1.0..1.0);
                let s = u * u + v * v;
                if s > 0.0 && s < 1.0 {
                    break (u, v, (-2.0 * s.ln() / s).sqrt());
                }
            };
            out[at] = u * f;
            at += 1;
            if at < out.len() {
                out[at] = v * f;
                at += 1;
            } else {
                self.spare = Some(v * f);
            }
        }
    }

    /// Serialize the RNG state words *and* the cached spare variate.
    ///
    /// Persisting the spare is load-bearing for bit-identical resume: a
    /// restored source that dropped it would consume the RNG one accepted
    /// polar trial early and shift every subsequent variate.
    pub fn save_state(&self, w: &mut Writer) {
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_opt_f64(self.spare);
    }

    /// Reconstruct a source from bytes written by
    /// [`save_state`](Self::save_state).
    pub fn load_state(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.take_u64()?;
        }
        Ok(NormalSource {
            rng: StdRng::from_state(s),
            spare: r.take_opt_f64()?,
        })
    }
}

/// A consistent Gaussian sampling stream at a fixed point.
///
/// Estimate after total time `t`: `S/t ~ N(f, σ0²/t)`. The reported standard
/// error is the *oracle* value `σ0/√t`, matching the paper's assumption that
/// the expectation value of the noise is available to the algorithm.
#[derive(Debug, Clone)]
pub struct GaussianStream {
    f: f64,
    sigma0: f64,
    t: f64,
    sum: f64,
    nonfinite: u64,
    src: NormalSource,
}

impl GaussianStream {
    /// Start a stream at a point whose noise-free value is `f` with inherent
    /// noise magnitude `sigma0`.
    pub fn new(f: f64, sigma0: f64, seed: u64) -> Self {
        GaussianStream {
            f,
            sigma0,
            t: 0.0,
            sum: 0.0,
            nonfinite: 0,
            src: NormalSource::new(seed),
        }
    }

    /// The underlying noise-free value (test/measurement use only).
    pub fn underlying(&self) -> f64 {
        self.f
    }

    /// The inherent noise magnitude `σ0`.
    pub fn sigma0(&self) -> f64 {
        self.sigma0
    }
}

impl SampleStream for GaussianStream {
    fn extend(&mut self, dt: f64) {
        assert!(dt > 0.0, "sampling increment must be positive, got {dt}");
        // Brownian increment: N(f*dt, sigma0^2 * dt).
        let z = if self.sigma0 > 0.0 {
            self.src.sample()
        } else {
            0.0
        };
        let inc = self.f * dt + self.sigma0 * dt.sqrt() * z;
        if !inc.is_finite() {
            // Quarantine at ingestion: a NaN/Inf underlying value must not
            // reach the Brownian accumulator (it would silently poison every
            // later estimate). Time still advances — the sampling effort was
            // spent — and `estimate` reports `+inf` from now on.
            self.nonfinite += 1;
            self.t += dt;
            return;
        }
        self.sum += inc;
        self.t += dt;
    }

    fn estimate(&self) -> Estimate {
        if self.nonfinite > 0 {
            return Estimate {
                value: f64::INFINITY,
                std_err: 0.0,
                time: self.t,
            };
        }
        if self.t <= 0.0 {
            // An unsampled stream is maximally uncertain; report the prior
            // mean with infinite error so no confidence comparison passes.
            return Estimate {
                value: self.f,
                std_err: f64::INFINITY,
                time: 0.0,
            };
        }
        Estimate {
            value: self.sum / self.t,
            std_err: if self.sigma0 > 0.0 {
                self.sigma0 / self.t.sqrt()
            } else {
                0.0
            },
            time: self.t,
        }
    }

    fn save_state(&self, w: &mut Writer) -> Result<(), CodecError> {
        w.put_f64(self.f);
        w.put_f64(self.sigma0);
        w.put_f64(self.t);
        w.put_f64(self.sum);
        w.put_u64(self.nonfinite);
        self.src.save_state(w);
        Ok(())
    }

    fn load_state(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(GaussianStream {
            f: r.take_f64()?,
            sigma0: r.take_f64()?,
            t: r.take_f64()?,
            sum: r.take_f64()?,
            nonfinite: r.take_u64()?,
            src: NormalSource::load_state(r)?,
        })
    }

    fn wire_id() -> Option<&'static str> {
        Some("gaussian.v1")
    }

    fn nonfinite_samples(&self) -> u64 {
        self.nonfinite
    }
}

/// A stream that estimates its own standard error empirically from discrete
/// sample batches (no oracle knowledge of `σ0`).
///
/// Each `extend(dt)` draws `ceil(dt / dt_sample)` unit samples
/// `N(f, σ0²/dt_sample)` and folds them into a Welford accumulator; the
/// reported error is the standard error of the mean. This is the "realistic"
/// mode: the paper notes the inherent variance is not known ahead of time.
#[derive(Debug, Clone)]
pub struct EmpiricalStream {
    f: f64,
    sigma0: f64,
    dt_sample: f64,
    n: u64,
    mean: f64,
    m2: f64,
    nonfinite: u64,
    src: NormalSource,
}

impl EmpiricalStream {
    /// Start an empirical stream; `dt_sample` is the virtual duration of one
    /// discrete sample (one MD segment, one simulation batch, ...).
    pub fn new(f: f64, sigma0: f64, dt_sample: f64, seed: u64) -> Self {
        assert!(dt_sample > 0.0);
        EmpiricalStream {
            f,
            sigma0,
            dt_sample,
            n: 0,
            mean: 0.0,
            m2: 0.0,
            nonfinite: 0,
            src: NormalSource::new(seed),
        }
    }

    /// Whether unit samples from this stream are finite. Noise variates are
    /// always finite, so finiteness is a per-stream property of `f` and the
    /// unit standard deviation — either every sample is finite or every
    /// sample is quarantined, which keeps the single-sample and batched
    /// ingestion paths consistent.
    fn samples_finite(&self) -> bool {
        self.f.is_finite()
            && (self.sigma0 == 0.0 || (self.sigma0 / self.dt_sample.sqrt()).is_finite())
    }

    fn push(&mut self, x: f64) {
        if !x.is_finite() {
            // Quarantine at ingestion (see `SampleStream::nonfinite_samples`):
            // one NaN through Welford would corrupt `mean`/`m2` forever.
            self.nonfinite += 1;
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Sufficient-statistics fast path for multi-sample extensions: one
    /// pass accumulating (count, sum, sum of squares) of the *deviations*
    /// from the known mean `f` (centering avoids the cancellation that
    /// makes raw sum-of-squares variance unstable), then a single Chan
    /// parallel-Welford merge into the running accumulator. Consumes
    /// exactly the same variate sequence as `batches` calls to `push`.
    fn extend_batched(&mut self, batches: u64) {
        if !self.samples_finite() {
            // Every unit sample would be non-finite: quarantine the whole
            // batch, but still consume the same number of noise variates as
            // the per-sample path so RNG trajectories stay aligned.
            for _ in 0..batches {
                if self.sigma0 > 0.0 {
                    let _ = self.src.sample();
                }
            }
            self.nonfinite += batches;
            return;
        }
        let unit_sd = self.sigma0 / self.dt_sample.sqrt();
        let (mut sum_c, mut sumsq_c) = (0.0, 0.0);
        for _ in 0..batches {
            let x_c = if self.sigma0 > 0.0 {
                unit_sd * self.src.sample()
            } else {
                0.0
            };
            sum_c += x_c;
            sumsq_c += x_c * x_c;
        }
        let nb = batches as f64;
        let mean_b = self.f + sum_c / nb;
        // Batch M2; clamp the rounding underflow that can make it -0-ish.
        let m2_b = (sumsq_c - sum_c * (sum_c / nb)).max(0.0);
        if self.n == 0 {
            self.n = batches;
            self.mean = mean_b;
            self.m2 = m2_b;
            return;
        }
        let na = self.n as f64;
        let n = na + nb;
        let delta = mean_b - self.mean;
        self.mean += delta * (nb / n);
        self.m2 += m2_b + delta * delta * na * (nb / n);
        self.n += batches;
    }
}

impl SampleStream for EmpiricalStream {
    fn extend(&mut self, dt: f64) {
        assert!(dt > 0.0);
        let batches = (dt / self.dt_sample).ceil().max(1.0) as u64;
        if batches > 1 {
            self.extend_batched(batches);
            return;
        }
        let unit_sd = self.sigma0 / self.dt_sample.sqrt();
        let z = if self.sigma0 > 0.0 {
            self.src.sample()
        } else {
            0.0
        };
        self.push(self.f + unit_sd * z);
    }

    fn estimate(&self) -> Estimate {
        if self.nonfinite > 0 {
            // Quarantined point: worst possible value with zero uncertainty,
            // so it loses every confidence comparison outright instead of
            // stalling gates behind an infinite error bar. Time counts the
            // quarantined draws — that sampling effort was spent.
            return Estimate {
                value: f64::INFINITY,
                std_err: 0.0,
                time: (self.n + self.nonfinite) as f64 * self.dt_sample,
            };
        }
        if self.n < 2 {
            return Estimate {
                value: if self.n == 1 { self.mean } else { self.f },
                std_err: f64::INFINITY,
                time: self.n as f64 * self.dt_sample,
            };
        }
        let var = self.m2 / (self.n - 1) as f64;
        Estimate {
            value: self.mean,
            std_err: (var / self.n as f64).sqrt(),
            time: self.n as f64 * self.dt_sample,
        }
    }

    fn save_state(&self, w: &mut Writer) -> Result<(), CodecError> {
        w.put_f64(self.f);
        w.put_f64(self.sigma0);
        w.put_f64(self.dt_sample);
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_u64(self.nonfinite);
        self.src.save_state(w);
        Ok(())
    }

    fn load_state(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let f = r.take_f64()?;
        let sigma0 = r.take_f64()?;
        let dt_sample = r.take_f64()?;
        if dt_sample.is_nan() || dt_sample <= 0.0 {
            return Err(CodecError::Invalid {
                what: "EmpiricalStream dt_sample",
            });
        }
        Ok(EmpiricalStream {
            f,
            sigma0,
            dt_sample,
            n: r.take_u64()?,
            mean: r.take_f64()?,
            m2: r.take_f64()?,
            nonfinite: r.take_u64()?,
            src: NormalSource::load_state(r)?,
        })
    }

    fn wire_id() -> Option<&'static str> {
        Some("empirical.v1")
    }

    fn nonfinite_samples(&self) -> u64 {
        self.nonfinite
    }
}

/// An empirical stream for *hostile* noise: any [`NoiseDistribution`]
/// (heavy tails, contamination, drift) with any [`EstimatorChoice`].
///
/// Unlike [`EmpiricalStream`], every unit sample's noise is a pure function
/// of `(seed, sample index)` via [`crate::rng::PerSampleRng`], so draws are
/// independent of how `extend` calls were batched, retried, or distributed
/// (the satellite RNG-derivation fix — DESIGN.md §14). The stream keeps
/// *all* sufficient statistics in parallel — full Welford moments to order
/// four (which also power the tail diagnostic) and round-robin block means —
/// so the reporting estimator can be switched mid-run without losing
/// history, which is what breakdown auto-degradation relies on.
#[derive(Debug, Clone)]
pub struct HostileStream {
    f: f64,
    sigma0: f64,
    dt_sample: f64,
    seed: u64,
    /// Unit samples drawn so far — the per-sample RNG index.
    drawn: u64,
    dist: NoiseDistribution,
    est: EstimatorChoice,
    moments: Moments,
    blocks: BlockMeans,
    outliers: u64,
    nonfinite: u64,
}

/// Samples needed before the running outlier test switches on — below
/// this the running standard deviation is too noisy to call anything an
/// outlier.
const OUTLIER_MIN_N: u64 = 16;

impl HostileStream {
    /// Start a hostile stream at a point whose noise-free value is `f`.
    /// `dt_sample` is the virtual duration of one unit sample; the block
    /// count is fixed at open time from `est` (see
    /// [`EstimatorChoice::block_count`]).
    pub fn new(
        f: f64,
        sigma0: f64,
        dt_sample: f64,
        seed: u64,
        dist: NoiseDistribution,
        est: EstimatorChoice,
    ) -> Self {
        assert!(dt_sample > 0.0);
        HostileStream {
            f,
            sigma0,
            dt_sample,
            seed,
            drawn: 0,
            dist,
            est,
            moments: Moments::new(),
            blocks: BlockMeans::new(est.block_count()),
            outliers: 0,
            nonfinite: 0,
        }
    }

    /// The distribution this stream draws from.
    pub fn distribution(&self) -> NoiseDistribution {
        self.dist
    }

    /// The estimator currently reported through `estimate`.
    pub fn estimator(&self) -> EstimatorChoice {
        self.est
    }

    fn ingest(&mut self, x: f64) {
        if !x.is_finite() {
            // Quarantine at ingestion, exactly like EmpiricalStream: one NaN
            // through the accumulators would corrupt them forever.
            self.nonfinite += 1;
            return;
        }
        // Outlier test against the *pre-update* running estimate: a spike
        // must not first inflate the σ it is measured against.
        if self.moments.count() >= OUTLIER_MIN_N {
            let sd = self.moments.variance().sqrt();
            if sd.is_finite() && sd > 0.0 && (x - self.moments.mean()).abs() > 6.0 * sd {
                self.outliers += 1;
            }
        }
        self.moments.push(x);
        self.blocks.push(x);
    }
}

impl SampleStream for HostileStream {
    fn extend(&mut self, dt: f64) {
        assert!(dt > 0.0);
        let batches = (dt / self.dt_sample).ceil().max(1.0) as u64;
        let unit_sd = self.sigma0 / self.dt_sample.sqrt();
        for _ in 0..batches {
            let idx = self.drawn;
            self.drawn += 1;
            let x = if self.sigma0 > 0.0 {
                // Stream-local virtual time of this sample's end, for drift.
                let t = (idx + 1) as f64 * self.dt_sample;
                self.dist.observe(self.seed, idx, t, self.f, unit_sd)
            } else {
                // Zero noise stays exactly deterministic: drift bias scales
                // with the unit σ, so it vanishes too.
                self.f
            };
            self.ingest(x);
        }
    }

    fn estimate(&self) -> Estimate {
        if self.nonfinite > 0 {
            // Quarantined point: worst value, zero uncertainty — loses every
            // ordering comparison outright (see EmpiricalStream::estimate).
            return Estimate {
                value: f64::INFINITY,
                std_err: 0.0,
                time: (self.moments.count() + self.nonfinite) as f64 * self.dt_sample,
            };
        }
        let n = self.moments.count();
        let time = n as f64 * self.dt_sample;
        if n == 0 {
            return Estimate {
                value: self.f,
                std_err: f64::INFINITY,
                time: 0.0,
            };
        }
        if self.sigma0 == 0.0 {
            return Estimate {
                value: self.moments.mean(),
                std_err: 0.0,
                time,
            };
        }
        match self.est {
            EstimatorChoice::Welford => Estimate {
                value: self.moments.mean(),
                std_err: if n < 2 {
                    f64::INFINITY
                } else {
                    (self.moments.variance() / n as f64).sqrt()
                },
                time,
            },
            robust => {
                let pair = match robust {
                    EstimatorChoice::TrimmedMean { .. } => {
                        self.blocks.trimmed_mean(robust.trim_fraction())
                    }
                    _ => self.blocks.median_of_means(),
                };
                let (value, std_err) = pair.unwrap_or((self.f, f64::INFINITY));
                // Below ~one sample per block the block means are single
                // draws and their dispersion is meaningless: stay maximally
                // uncertain rather than reporting a sharp error bar.
                let enough = n >= self.blocks.blocks() as u64 + 2;
                Estimate {
                    value,
                    std_err: if enough { std_err } else { f64::INFINITY },
                    time,
                }
            }
        }
    }

    fn save_state(&self, w: &mut Writer) -> Result<(), CodecError> {
        w.put_f64(self.f);
        w.put_f64(self.sigma0);
        w.put_f64(self.dt_sample);
        w.put_u64(self.seed);
        w.put_u64(self.drawn);
        self.dist.save(w);
        self.est.save(w);
        self.moments.save(w);
        self.blocks.save(w);
        w.put_u64(self.outliers);
        w.put_u64(self.nonfinite);
        Ok(())
    }

    fn load_state(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let f = r.take_f64()?;
        let sigma0 = r.take_f64()?;
        let dt_sample = r.take_f64()?;
        if dt_sample.is_nan() || dt_sample <= 0.0 {
            return Err(CodecError::Invalid {
                what: "HostileStream dt_sample",
            });
        }
        Ok(HostileStream {
            f,
            sigma0,
            dt_sample,
            seed: r.take_u64()?,
            drawn: r.take_u64()?,
            dist: NoiseDistribution::load(r)?,
            est: EstimatorChoice::load(r)?,
            moments: Moments::load(r)?,
            blocks: BlockMeans::load(r)?,
            outliers: r.take_u64()?,
            nonfinite: r.take_u64()?,
        })
    }

    fn wire_id() -> Option<&'static str> {
        Some("hostile.v1")
    }

    fn nonfinite_samples(&self) -> u64 {
        self.nonfinite
    }

    fn tail_report(&self) -> Option<TailReport> {
        let n = self.moments.count();
        if n == 0 {
            return None;
        }
        Some(TailReport {
            n,
            excess_kurtosis: self.moments.excess_kurtosis(),
            outlier_frac: self.outliers as f64 / n as f64,
        })
    }

    fn set_estimator(&mut self, choice: EstimatorChoice) {
        // Only the *reporting* changes; the block layout was fixed at open,
        // so the sufficient statistics are untouched and the switch is
        // loss-free and bit-deterministic at any point in the run.
        self.est = choice;
    }
}

/// Wrap a deterministic [`Objective`] with a [`NoiseModel`] to obtain a
/// [`StochasticObjective`] whose streams follow Eq. 1.1–1.2.
#[derive(Debug, Clone)]
pub struct Noisy<O, N> {
    objective: O,
    noise: N,
    empirical: bool,
    dt_sample: f64,
    dist: NoiseDistribution,
    estimator: EstimatorChoice,
}

impl<O: Objective, N: NoiseModel> Noisy<O, N> {
    /// Oracle-error mode (default; matches the paper's experiments).
    ///
    /// Honours the `NSX_NOISE` / `NSX_ESTIMATOR` environment: a hostile
    /// distribution or non-Welford estimator switches the opened streams to
    /// [`HostileStream`]. With both at their defaults this is bit-identical
    /// to the historical behaviour. Use [`gaussian`](Self::gaussian) to pin
    /// the paper's exact model regardless of environment.
    pub fn new(objective: O, noise: N) -> Self {
        Noisy {
            objective,
            noise,
            empirical: false,
            dt_sample: 1.0,
            dist: NoiseDistribution::from_env(),
            estimator: EstimatorChoice::from_env(),
        }
    }

    /// Empirical-error mode: streams estimate their own standard error from
    /// batches of duration `dt_sample`. Honours `NSX_NOISE` /
    /// `NSX_ESTIMATOR` like [`new`](Self::new).
    pub fn empirical(objective: O, noise: N, dt_sample: f64) -> Self {
        Noisy {
            objective,
            noise,
            empirical: true,
            dt_sample,
            dist: NoiseDistribution::from_env(),
            estimator: EstimatorChoice::from_env(),
        }
    }

    /// The paper's exact model — oracle Gaussian streams with Welford
    /// reporting — *ignoring* any `NSX_NOISE`/`NSX_ESTIMATOR` environment.
    /// For tests and exhibits that assert Gaussian-specific values.
    pub fn gaussian(objective: O, noise: N) -> Self {
        Noisy {
            objective,
            noise,
            empirical: false,
            dt_sample: 1.0,
            dist: NoiseDistribution::gaussian(),
            estimator: EstimatorChoice::Welford,
        }
    }

    /// Override the noise distribution (builder style).
    pub fn with_distribution(mut self, dist: NoiseDistribution) -> Self {
        self.dist = dist;
        self
    }

    /// Override the reporting estimator (builder style).
    pub fn with_estimator(mut self, estimator: EstimatorChoice) -> Self {
        self.estimator = estimator;
        self
    }

    /// The distribution streams will draw from.
    pub fn distribution(&self) -> NoiseDistribution {
        self.dist
    }

    /// The estimator streams will report through.
    pub fn estimator(&self) -> EstimatorChoice {
        self.estimator
    }

    /// Access the wrapped deterministic objective.
    pub fn objective(&self) -> &O {
        &self.objective
    }
}

/// Stream type produced by [`Noisy`]: oracle Gaussian, empirical, or
/// hostile (non-Gaussian distribution and/or robust estimator).
#[derive(Debug, Clone)]
pub enum NoisyStream {
    /// Oracle-error Gaussian stream.
    Oracle(GaussianStream),
    /// Batch-based empirical stream.
    Empirical(EmpiricalStream),
    /// Hostile-noise stream (any distribution, any estimator).
    Hostile(HostileStream),
}

impl SampleStream for NoisyStream {
    fn extend(&mut self, dt: f64) {
        match self {
            NoisyStream::Oracle(s) => s.extend(dt),
            NoisyStream::Empirical(s) => s.extend(dt),
            NoisyStream::Hostile(s) => s.extend(dt),
        }
    }
    fn estimate(&self) -> Estimate {
        match self {
            NoisyStream::Oracle(s) => s.estimate(),
            NoisyStream::Empirical(s) => s.estimate(),
            NoisyStream::Hostile(s) => s.estimate(),
        }
    }

    fn save_state(&self, w: &mut Writer) -> Result<(), CodecError> {
        match self {
            NoisyStream::Oracle(s) => {
                w.put_u8(0);
                s.save_state(w)
            }
            NoisyStream::Empirical(s) => {
                w.put_u8(1);
                s.save_state(w)
            }
            NoisyStream::Hostile(s) => {
                w.put_u8(2);
                s.save_state(w)
            }
        }
    }

    fn load_state(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_u8()? {
            0 => Ok(NoisyStream::Oracle(GaussianStream::load_state(r)?)),
            1 => Ok(NoisyStream::Empirical(EmpiricalStream::load_state(r)?)),
            2 => Ok(NoisyStream::Hostile(HostileStream::load_state(r)?)),
            tag => Err(CodecError::Tag {
                what: "NoisyStream variant",
                tag,
            }),
        }
    }

    // Still "noisy.v1": adding the Hostile tag is a compatible extension —
    // every byte layout that decoded before still decodes to the same
    // stream, and a newer master never sends tag 2 to an older worker
    // (master and workers are the same binary).
    fn wire_id() -> Option<&'static str> {
        Some("noisy.v1")
    }

    fn nonfinite_samples(&self) -> u64 {
        match self {
            NoisyStream::Oracle(s) => s.nonfinite_samples(),
            NoisyStream::Empirical(s) => s.nonfinite_samples(),
            NoisyStream::Hostile(s) => s.nonfinite_samples(),
        }
    }

    fn tail_report(&self) -> Option<TailReport> {
        match self {
            NoisyStream::Hostile(s) => s.tail_report(),
            _ => None,
        }
    }

    fn set_estimator(&mut self, choice: EstimatorChoice) {
        if let NoisyStream::Hostile(s) = self {
            s.set_estimator(choice);
        }
    }
}

impl<O: Objective, N: NoiseModel> StochasticObjective for Noisy<O, N> {
    type Stream = NoisyStream;

    fn dim(&self) -> usize {
        self.objective.dim()
    }

    fn open(&self, x: &[f64], seed: u64) -> NoisyStream {
        let f = self.objective.value(x);
        let sigma0 = self.noise.sigma0(x, f);
        if !self.dist.is_gaussian() || self.estimator != EstimatorChoice::Welford {
            // Any hostile layer (or a robust reporting estimator) needs the
            // per-sample stream; the Gaussian+Welford default keeps the
            // legacy streams bit-identical to every release before the seam.
            NoisyStream::Hostile(HostileStream::new(
                f,
                sigma0,
                self.dt_sample,
                seed,
                self.dist,
                self.estimator,
            ))
        } else if self.empirical {
            NoisyStream::Empirical(EmpiricalStream::new(f, sigma0, self.dt_sample, seed))
        } else {
            NoisyStream::Oracle(GaussianStream::new(f, sigma0, seed))
        }
    }

    fn true_value(&self, x: &[f64]) -> Option<f64> {
        Some(self.objective.value(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{ConstantNoise, ZeroNoise};
    use crate::objective::Objective;

    struct Const(f64);
    impl Objective for Const {
        fn dim(&self) -> usize {
            1
        }
        fn value(&self, _x: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn unsampled_stream_is_infinitely_uncertain() {
        let s = GaussianStream::new(5.0, 1.0, 1);
        let e = s.estimate();
        assert!(e.std_err.is_infinite());
        assert_eq!(e.time, 0.0);
    }

    #[test]
    fn oracle_error_shrinks_as_inverse_sqrt_t() {
        let mut s = GaussianStream::new(0.0, 10.0, 2);
        s.extend(4.0);
        assert!((s.estimate().std_err - 5.0).abs() < 1e-12);
        s.extend(12.0); // t = 16
        assert!((s.estimate().std_err - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_noise_stream_is_exact() {
        let mut s = GaussianStream::new(3.25, 0.0, 3);
        s.extend(1.0);
        let e = s.estimate();
        assert_eq!(e.value, 3.25);
        assert_eq!(e.std_err, 0.0);
    }

    #[test]
    fn estimate_converges_to_underlying() {
        let mut s = GaussianStream::new(7.0, 50.0, 4);
        s.extend(1.0);
        let rough = (s.estimate().value - 7.0).abs();
        s.extend(1e6);
        let fine = (s.estimate().value - 7.0).abs();
        assert!(fine < rough.max(1.0));
        assert!(fine < 0.5, "fine error {fine} too large");
    }

    #[test]
    fn refinement_is_consistent_running_average() {
        // Extending must update the estimate as a weighted running average:
        // after a huge extension the earlier noise contribution washes out.
        let mut s = GaussianStream::new(0.0, 100.0, 5);
        s.extend(1.0);
        let e1 = s.estimate().value;
        s.extend(1e8);
        let e2 = s.estimate().value;
        assert!(e2.abs() < e1.abs().max(0.5));
    }

    #[test]
    fn empirical_error_tracks_oracle() {
        let mut s = EmpiricalStream::new(0.0, 10.0, 1.0, 6);
        s.extend(10_000.0);
        let e = s.estimate();
        let oracle = 10.0 / 10_000.0_f64.sqrt();
        assert!(
            (e.std_err - oracle).abs() / oracle < 0.2,
            "empirical {} vs oracle {}",
            e.std_err,
            oracle
        );
        assert!(e.value.abs() < 5.0 * oracle);
    }

    #[test]
    fn noisy_wrapper_reports_truth_and_respects_zero_noise() {
        let obj = Noisy::new(Const(9.0), ZeroNoise);
        assert_eq!(obj.true_value(&[0.0]), Some(9.0));
        let mut st = obj.open(&[0.0], 0);
        st.extend(1.0);
        assert_eq!(st.estimate().value, 9.0);
        assert_eq!(st.estimate().std_err, 0.0);
    }

    #[test]
    fn noisy_streams_with_different_seeds_differ() {
        let obj = Noisy::new(Const(0.0), ConstantNoise(10.0));
        let mut a = obj.open(&[0.0], 1);
        let mut b = obj.open(&[0.0], 2);
        a.extend(1.0);
        b.extend(1.0);
        assert_ne!(a.estimate().value, b.estimate().value);
    }

    #[test]
    fn normal_source_moments_and_spare_reuse() {
        let mut src = NormalSource::new(99);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let z = src.sample();
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        // Spare caching: the second draw comes from the cache, not the RNG,
        // so one accepted polar trial serves two samples. Verify clones
        // replay identically (the mw retry contract) including the spare.
        let mut a = NormalSource::new(5);
        let _ = a.sample(); // leaves a spare cached
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.sample().to_bits(), b.sample().to_bits());
        }
    }

    #[test]
    fn fill_is_bit_exact_with_sample_loop() {
        // Every interleaving of fill sizes (odd, even, empty, size 1) must
        // reproduce the one-at-a-time sample() sequence exactly, including
        // spare hand-off across call boundaries.
        for sizes in [
            vec![7usize, 4, 0, 1, 6],
            vec![1, 1, 1, 1],
            vec![10],
            vec![0, 5, 3],
        ] {
            let total: usize = sizes.iter().sum();
            let mut reference = NormalSource::new(42);
            let expected: Vec<f64> = (0..total).map(|_| reference.sample()).collect();
            let mut bulk = NormalSource::new(42);
            let mut got = Vec::with_capacity(total);
            for len in &sizes {
                let mut buf = vec![0.0; *len];
                bulk.fill(&mut buf);
                got.extend_from_slice(&buf);
            }
            for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(e.to_bits(), g.to_bits(), "sizes {sizes:?}, draw {i}");
            }
            // The sources end in the same state: next draws still agree.
            assert_eq!(reference.sample().to_bits(), bulk.sample().to_bits());
        }
        // A fill can also *start* from a cached spare left by sample().
        let mut a = NormalSource::new(77);
        let mut b = NormalSource::new(77);
        let first = [a.sample(), a.sample(), a.sample()];
        let _ = b.sample(); // leaves a spare cached
        let mut buf = [0.0; 2];
        b.fill(&mut buf);
        assert_eq!(first[1].to_bits(), buf[0].to_bits());
        assert_eq!(first[2].to_bits(), buf[1].to_bits());
    }

    #[test]
    fn from_rng_continues_the_generator() {
        let mut rng = rng_from_seed(31);
        let _ = standard_normal(&mut rng);
        let mut src = NormalSource::from_rng(rng.clone());
        // Same generator state, no spare: the next accepted trial's first
        // output matches a direct standard_normal draw.
        assert_eq!(src.sample().to_bits(), standard_normal(&mut rng).to_bits());
    }

    #[test]
    fn gaussian_stream_quarantines_nonfinite() {
        let mut s = GaussianStream::new(f64::NAN, 1.0, 7);
        s.extend(1.0);
        s.extend(2.0);
        assert_eq!(s.nonfinite_samples(), 2);
        let e = s.estimate();
        assert_eq!(e.value, f64::INFINITY);
        assert_eq!(e.std_err, 0.0);
        assert_eq!(e.time, 3.0); // sampling effort still counted
    }

    #[test]
    fn empirical_stream_quarantines_both_paths() {
        // Single-sample path.
        let mut s = EmpiricalStream::new(f64::INFINITY, 1.0, 1.0, 8);
        s.extend(1.0);
        assert_eq!(s.nonfinite_samples(), 1);
        // Batched path consumes the same variate count as per-sample pushes.
        let mut a = EmpiricalStream::new(f64::NAN, 2.0, 1.0, 9);
        let mut b = a.clone();
        a.extend(16.0); // batched
        for _ in 0..16 {
            b.extend(1.0); // per-sample
        }
        assert_eq!(a.nonfinite_samples(), 16);
        assert_eq!(b.nonfinite_samples(), 16);
        assert_eq!(a.src.sample().to_bits(), b.src.sample().to_bits());
        let e = a.estimate();
        assert_eq!(e.value, f64::INFINITY);
        assert_eq!(e.std_err, 0.0);
        assert_eq!(e.time, 16.0);
    }

    #[test]
    fn finite_streams_report_zero_nonfinite() {
        let mut g = GaussianStream::new(1.0, 2.0, 10);
        g.extend(5.0);
        assert_eq!(g.nonfinite_samples(), 0);
        let mut e = EmpiricalStream::new(1.0, 2.0, 1.0, 10);
        e.extend(5.0);
        assert_eq!(e.nonfinite_samples(), 0);
    }

    /// Save → load → continue must be bit-identical to continuing directly.
    fn assert_replay_identical<S: SampleStream>(mut live: S) {
        let mut w = Writer::new();
        live.save_state(&mut w).expect("save");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let mut restored = S::load_state(&mut r).expect("load");
        r.finish().expect("no trailing bytes");
        for i in 0..50 {
            live.extend(0.7);
            restored.extend(0.7);
            let (a, b) = (live.estimate(), restored.estimate());
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "value step {i}");
            assert_eq!(a.std_err.to_bits(), b.std_err.to_bits(), "err step {i}");
            assert_eq!(a.time.to_bits(), b.time.to_bits(), "time step {i}");
        }
    }

    #[test]
    fn gaussian_stream_state_round_trip() {
        let mut s = GaussianStream::new(3.0, 7.0, 11);
        s.extend(2.5); // leaves a cached spare in the NormalSource
        assert_replay_identical(s);
    }

    #[test]
    fn empirical_stream_state_round_trip() {
        let mut s = EmpiricalStream::new(-1.0, 4.0, 0.5, 12);
        s.extend(3.0);
        assert_replay_identical(s);
    }

    #[test]
    fn noisy_stream_state_round_trip_both_variants() {
        let oracle = Noisy::new(Const(2.0), ConstantNoise(3.0));
        let mut s = oracle.open(&[0.0], 13);
        s.extend(1.0);
        assert_replay_identical(s);
        let emp = Noisy::empirical(Const(2.0), ConstantNoise(3.0), 1.0);
        let mut s = emp.open(&[0.0], 14);
        s.extend(4.0);
        assert_replay_identical(s);
    }

    #[test]
    fn empirical_load_rejects_bad_dt_sample() {
        let mut s = EmpiricalStream::new(0.0, 1.0, 1.0, 15);
        s.extend(1.0);
        let mut w = Writer::new();
        s.save_state(&mut w).expect("save");
        let mut bytes = w.into_bytes();
        // dt_sample is the third f64 field (bytes 16..24); zero it out.
        bytes[16..24].copy_from_slice(&0.0f64.to_le_bytes());
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            EmpiricalStream::load_state(&mut r),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn hostile_gaussian_tracks_empirical_statistics() {
        let dist = NoiseDistribution::gaussian();
        let mut s = HostileStream::new(0.0, 10.0, 1.0, 21, dist, EstimatorChoice::Welford);
        s.extend(10_000.0);
        let e = s.estimate();
        let oracle = 10.0 / 10_000.0_f64.sqrt();
        assert!(
            (e.std_err - oracle).abs() / oracle < 0.2,
            "hostile gaussian std_err {} vs oracle {}",
            e.std_err,
            oracle
        );
        assert!(e.value.abs() < 5.0 * oracle);
        let rep = s.tail_report().expect("has samples");
        assert!(rep.excess_kurtosis.abs() < 0.5, "{rep:?}");
        assert!(rep.outlier_frac < 0.001, "{rep:?}");
    }

    #[test]
    fn hostile_draws_do_not_depend_on_batching() {
        let dist = NoiseDistribution::student_t(3.0).with_contamination(0.05, 20.0);
        let mut one = HostileStream::new(1.0, 5.0, 1.0, 22, dist, EstimatorChoice::Welford);
        let mut many = one.clone();
        one.extend(64.0);
        for _ in 0..64 {
            many.extend(1.0);
        }
        let (a, b) = (one.estimate(), many.estimate());
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.std_err.to_bits(), b.std_err.to_bits());
        assert_eq!(a.time.to_bits(), b.time.to_bits());
    }

    #[test]
    fn hostile_zero_noise_is_exact_even_with_drift() {
        let dist = NoiseDistribution::parse("drift:sigma=0.9:bias=2.0:period=8").unwrap();
        let obj = Noisy::gaussian(Const(4.5), ZeroNoise).with_distribution(dist);
        let mut st = obj.open(&[0.0], 0);
        st.extend(5.0);
        let e = st.estimate();
        assert_eq!(e.value, 4.5);
        assert_eq!(e.std_err, 0.0);
    }

    #[test]
    fn hostile_estimator_switch_is_loss_free() {
        let dist = NoiseDistribution::student_t(3.0);
        let mut s = HostileStream::new(0.0, 5.0, 1.0, 23, dist, EstimatorChoice::Welford);
        s.extend(200.0);
        let welford = s.estimate();
        s.set_estimator(EstimatorChoice::MedianOfMeans { blocks: 8 });
        let robust = s.estimate();
        assert_ne!(welford.std_err.to_bits(), robust.std_err.to_bits());
        // Switching back restores the exact Welford report: nothing was lost.
        s.set_estimator(EstimatorChoice::Welford);
        let back = s.estimate();
        assert_eq!(welford.value.to_bits(), back.value.to_bits());
        assert_eq!(welford.std_err.to_bits(), back.std_err.to_bits());
    }

    #[test]
    fn hostile_robust_estimate_needs_enough_samples() {
        let dist = NoiseDistribution::gaussian();
        let mut s = HostileStream::new(
            0.0,
            1.0,
            1.0,
            24,
            dist,
            EstimatorChoice::MedianOfMeans { blocks: 8 },
        );
        s.extend(4.0); // fewer than blocks + 2 samples
        assert!(s.estimate().std_err.is_infinite());
        s.extend(60.0);
        assert!(s.estimate().std_err.is_finite());
    }

    #[test]
    fn hostile_stream_quarantines_nonfinite() {
        let dist = NoiseDistribution::student_t(3.0);
        let mut s = HostileStream::new(f64::NAN, 1.0, 1.0, 25, dist, EstimatorChoice::Welford);
        s.extend(3.0);
        assert_eq!(s.nonfinite_samples(), 3);
        let e = s.estimate();
        assert_eq!(e.value, f64::INFINITY);
        assert_eq!(e.std_err, 0.0);
        assert_eq!(e.time, 3.0);
    }

    #[test]
    fn hostile_stream_state_round_trip() {
        for spec in [
            "student_t:nu=3",
            "contaminated:eps=0.05:k=20",
            "drift:sigma=0.5:bias=0.5:period=16",
            "student_t:nu=3:eps=0.05:k=20",
        ] {
            let dist = NoiseDistribution::parse(spec).unwrap();
            let mut s = HostileStream::new(
                2.0,
                3.0,
                0.5,
                26,
                dist,
                EstimatorChoice::MedianOfMeans { blocks: 4 },
            );
            s.extend(7.0);
            assert_replay_identical(s);
        }
    }

    #[test]
    fn noisy_env_defaults_preserve_legacy_streams() {
        // With no hostile layer configured the wrapper must open the exact
        // legacy stream types (the bit-identical default contract) — unless
        // the environment opts in, in which case Hostile is correct.
        let hostile_env = std::env::var("NSX_NOISE").is_ok_and(|s| {
            !NoiseDistribution::parse(&s)
                .map(|d| d.is_gaussian())
                .unwrap_or(true)
        }) || std::env::var("NSX_ESTIMATOR")
            .is_ok_and(|s| EstimatorChoice::parse(&s) != Ok(EstimatorChoice::Welford));
        let obj = Noisy::new(Const(1.0), ConstantNoise(1.0));
        match obj.open(&[0.0], 0) {
            NoisyStream::Oracle(_) => assert!(!hostile_env),
            NoisyStream::Hostile(_) => assert!(hostile_env),
            NoisyStream::Empirical(_) => panic!("oracle mode opened an empirical stream"),
        }
        // Pinned constructor ignores the environment entirely.
        let pinned = Noisy::gaussian(Const(1.0), ConstantNoise(1.0));
        assert!(matches!(pinned.open(&[0.0], 0), NoisyStream::Oracle(_)));
        // Builder overrides open hostile streams regardless of environment.
        let t3 = Noisy::gaussian(Const(1.0), ConstantNoise(1.0))
            .with_distribution(NoiseDistribution::student_t(3.0));
        assert!(matches!(t3.open(&[0.0], 0), NoisyStream::Hostile(_)));
    }

    #[test]
    fn noisy_hostile_stream_round_trips_through_noisy_codec() {
        let obj = Noisy::gaussian(Const(2.0), ConstantNoise(3.0))
            .with_distribution(NoiseDistribution::parse("student_t:nu=3:eps=0.02").unwrap())
            .with_estimator(EstimatorChoice::MedianOfMeans { blocks: 8 });
        let mut s = obj.open(&[0.0], 27);
        s.extend(12.0);
        assert_replay_identical(s);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(99);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
