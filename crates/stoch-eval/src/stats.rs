//! Statistics used by the experiment harness: streaming moments, quantiles,
//! histograms, and the paired log-ratio analysis behind Figs 3.5–3.17.

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        (self.variance() / self.n as f64).sqrt()
    }

    /// Merge two accumulators (parallel reduction).
    pub fn merge(&self, other: &Welford) -> Welford {
        if self.n == 0 {
            return other.clone();
        }
        if other.n == 0 {
            return self.clone();
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        Welford { n, mean, m2 }
    }
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (linear-interpolated).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample (empty samples yield NaNs, n = 0).
    pub fn of(data: &[f64]) -> Summary {
        if data.is_empty() {
            return Summary {
                n: 0,
                mean: f64::NAN,
                std_dev: f64::NAN,
                min: f64::NAN,
                median: f64::NAN,
                max: f64::NAN,
            };
        }
        let mut w = Welford::new();
        for &x in data {
            w.push(x);
        }
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            n: data.len(),
            mean: w.mean(),
            std_dev: if data.len() > 1 { w.std_dev() } else { 0.0 },
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Linear-interpolated quantile of an already-sorted sample, `q ∈ [0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Linear-interpolated quantile of an unsorted sample.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_sorted(&sorted, q)
}

/// A fixed-range histogram with uniform bins, matching the paper's
/// count-vs-log-ratio panels.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `bins` uniform bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// Add one observation. Out-of-range values are folded into the edge
    /// bins' overflow counters (reported separately).
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Add many observations.
    pub fn extend_from(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Bin counts (in-range only).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo` / at-or-above `hi`.
    pub fn overflow(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total observations pushed, including overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }

    /// Centers of the bins.
    pub fn centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + (i as f64 + 0.5) * w)
            .collect()
    }

    /// Render as an ASCII bar chart, one bin per row.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let centers = self.centers();
        let mut out = String::new();
        for (c, n) in centers.iter().zip(&self.counts) {
            let bar = "#".repeat((*n as usize * width) / max as usize);
            out.push_str(&format!("{c:>8.2} |{bar:<width$}| {n}\n"));
        }
        if self.below + self.above > 0 {
            out.push_str(&format!(
                "  (out of range: {} below, {} at/above)\n",
                self.below, self.above
            ));
        }
        out
    }
}

/// `log10(a/b)` with clamping so that exact zeros (an optimizer landing on
/// the true minimum) do not produce infinities: values are floored at
/// `floor_value` before taking the ratio. The paper plots exactly this
/// quantity; negative means the numerator method got closer to the minimum.
pub fn log10_ratio(a: f64, b: f64, floor_value: f64) -> f64 {
    let a = a.abs().max(floor_value);
    let b = b.abs().max(floor_value);
    (a / b).log10()
}

/// Paired comparison of two methods' final minima across replicates:
/// the distribution of `log10(min_a / min_b)` plus headline fractions.
#[derive(Debug, Clone)]
pub struct PairedComparison {
    /// Per-replicate `log10(min_a/min_b)` values.
    pub log_ratios: Vec<f64>,
    /// Fraction of replicates where method A strictly beat method B
    /// (ratio < -tie_band).
    pub frac_a_wins: f64,
    /// Fraction within the tie band.
    pub frac_tie: f64,
    /// Fraction where B beat A.
    pub frac_b_wins: f64,
}

impl PairedComparison {
    /// Build from paired final minima; `tie_band` is the |log10 ratio| below
    /// which the pair counts as a tie (the paper treats ~0 as "comparable").
    pub fn new(mins_a: &[f64], mins_b: &[f64], floor_value: f64, tie_band: f64) -> Self {
        assert_eq!(mins_a.len(), mins_b.len());
        let log_ratios: Vec<f64> = mins_a
            .iter()
            .zip(mins_b)
            .map(|(&a, &b)| log10_ratio(a, b, floor_value))
            .collect();
        let n = log_ratios.len().max(1) as f64;
        let a = log_ratios.iter().filter(|&&r| r < -tie_band).count() as f64;
        let b = log_ratios.iter().filter(|&&r| r > tie_band).count() as f64;
        PairedComparison {
            frac_a_wins: a / n,
            frac_b_wins: b / n,
            frac_tie: 1.0 - (a + b) / n,
            log_ratios,
        }
    }

    /// Histogram of the log ratios over `[lo, hi)`.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        h.extend_from(&self.log_ratios);
        h
    }

    /// Two-sided sign-test p-value for "the two methods are equally likely
    /// to win" — ties excluded, exact binomial tail. Small p means the win
    /// imbalance is unlikely under the null.
    pub fn sign_test_p(&self, tie_band: f64) -> f64 {
        let wins_a = self.log_ratios.iter().filter(|&&r| r < -tie_band).count() as u64;
        let wins_b = self.log_ratios.iter().filter(|&&r| r > tie_band).count() as u64;
        sign_test(wins_a, wins_b)
    }
}

/// Exact two-sided sign test: probability, under a fair coin, of a split at
/// least as extreme as `(wins_a, wins_b)`.
pub fn sign_test(wins_a: u64, wins_b: u64) -> f64 {
    let n = wins_a + wins_b;
    if n == 0 {
        return 1.0;
    }
    let k = wins_a.min(wins_b);
    // P(X <= k) for X ~ Binomial(n, 1/2), computed in log space for
    // numerical stability at large n.
    let ln_half = 0.5f64.ln();
    let mut ln_choose = 0.0; // ln C(n, 0)
    let mut tail = 0.0f64;
    for i in 0..=k {
        if i > 0 {
            ln_choose += ((n - i + 1) as f64).ln() - (i as f64).ln();
        }
        tail += (ln_choose + n as f64 * ln_half).exp();
    }
    (2.0 * tail).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 4.0 * 8/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        let mut left = Welford::new();
        let mut right = Welford::new();
        for (i, &x) in data.iter().enumerate() {
            all.push(x);
            if i < 37 {
                left.push(x)
            } else {
                right.push(x)
            }
        }
        let merged = left.merge(&right);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-12);
        assert!((merged.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert!(w.variance().is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_eq!(quantile(&data, 0.5), 2.5);
        assert!((quantile(&data, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 5.5, 9.99, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.overflow(), (1, 2));
        assert_eq!(h.total(), 8);
        assert_eq!(h.centers()[0], 1.0);
    }

    #[test]
    fn histogram_renders_without_panic() {
        let mut h = Histogram::new(-2.0, 2.0, 4);
        h.extend_from(&[-1.5, 0.0, 0.1, 1.5, 1.5]);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn log_ratio_clamps_zeros() {
        assert_eq!(log10_ratio(0.0, 1.0, 1e-12), -12.0);
        assert_eq!(log10_ratio(1.0, 0.0, 1e-12), 12.0);
        assert_eq!(log10_ratio(100.0, 1.0, 1e-12), 2.0);
    }

    #[test]
    fn sign_test_values() {
        // Balanced split: p = 1.
        assert!((sign_test(5, 5) - 1.0).abs() < 0.3);
        // 10-0: p = 2 * (1/2)^10 ≈ 0.00195.
        assert!((sign_test(10, 0) - 2.0 * 0.5f64.powi(10)).abs() < 1e-12);
        // Empty: no evidence.
        assert_eq!(sign_test(0, 0), 1.0);
        // Symmetry.
        assert!((sign_test(3, 12) - sign_test(12, 3)).abs() < 1e-12);
        // Monotone: more extreme splits are less likely.
        assert!(sign_test(9, 1) < sign_test(7, 3));
    }

    #[test]
    fn paired_sign_test_detects_dominance() {
        let a = vec![1e-6; 12];
        let b = vec![1.0; 12];
        let c = PairedComparison::new(&a, &b, 1e-12, 0.25);
        assert!(c.sign_test_p(0.25) < 0.001);
        let even: Vec<f64> = (0..12)
            .map(|i| if i % 2 == 0 { 1e-6 } else { 1e6 })
            .collect();
        let c2 = PairedComparison::new(&even, &b, 1e-12, 0.25);
        assert!(c2.sign_test_p(0.25) > 0.5);
    }

    #[test]
    fn paired_comparison_fractions() {
        let a = [1e-6, 1.0, 1.0, 1e3];
        let b = [1.0, 1.0, 1e-6, 1.0];
        let c = PairedComparison::new(&a, &b, 1e-12, 0.5);
        assert!((c.frac_a_wins - 0.25).abs() < 1e-12);
        assert!((c.frac_b_wins - 0.5).abs() < 1e-12);
        assert!((c.frac_tie - 0.25).abs() < 1e-12);
        let h = c.histogram(-8.0, 8.0, 16);
        assert_eq!(h.total(), 4);
    }
}
