//! Statistics used by the experiment harness: streaming moments, quantiles,
//! histograms, and the paired log-ratio analysis behind Figs 3.5–3.17 —
//! plus the robust-estimator seam (median-of-means / trimmed-mean block
//! accumulators and the tail diagnostics behind breakdown-aware gating,
//! DESIGN.md §14).
//!
//! This module is on the hot decision path of every gate, so it must never
//! panic on data: `unwrap`/`expect` are denied, empty-sample quantiles
//! return a documented `NaN`, and sorting uses the `total_cmp` order (NaNs
//! sort last) instead of panicking on incomparable values.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::codec::{CodecError, Reader, Writer};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        (self.variance() / self.n as f64).sqrt()
    }

    /// Merge two accumulators (parallel reduction).
    pub fn merge(&self, other: &Welford) -> Welford {
        if self.n == 0 {
            return other.clone();
        }
        if other.n == 0 {
            return self.clone();
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        Welford { n, mean, m2 }
    }
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (linear-interpolated).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample (empty samples yield NaNs, n = 0).
    pub fn of(data: &[f64]) -> Summary {
        if data.is_empty() {
            return Summary {
                n: 0,
                mean: f64::NAN,
                std_dev: f64::NAN,
                min: f64::NAN,
                median: f64::NAN,
                max: f64::NAN,
            };
        }
        let mut w = Welford::new();
        for &x in data {
            w.push(x);
        }
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            n: data.len(),
            mean: w.mean(),
            std_dev: if data.len() > 1 { w.std_dev() } else { 0.0 },
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Linear-interpolated quantile of an already-sorted sample, `q ∈ [0, 1]`.
///
/// An empty sample yields `NaN` (a quantile of nothing is undefined — this
/// used to be a panic path). Out-of-range `q` is clamped to `[0, 1]`, and
/// the sort order expected is [`f64::total_cmp`]'s, under which any `NaN`s
/// sort last (so they only surface through the top quantiles).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Linear-interpolated quantile of an unsorted sample; `NaN` when empty
/// (see [`quantile_sorted`]). NaN observations sort last rather than
/// panicking the comparison.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

/// Which location/scale estimator a sampling stream reports through
/// `estimate()` (DESIGN.md §14).
///
/// [`Welford`](EstimatorChoice::Welford) is the classical mean / standard
/// error (the paper's assumption); the robust choices survive heavy tails
/// and contamination at the cost of statistical efficiency under clean
/// Gaussian noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorChoice {
    /// Sample mean with Welford standard error (default).
    #[default]
    Welford,
    /// Median of block means; scale from the MAD of the block means.
    /// Breakdown point ~ `blocks/2` adversarial samples.
    MedianOfMeans {
        /// Number of round-robin blocks (≥ 2).
        blocks: u32,
    },
    /// Mean of the central block means after trimming a fraction from each
    /// end.
    TrimmedMean {
        /// Number of round-robin blocks (≥ 2).
        blocks: u32,
        /// Fraction trimmed from *each* tail, in units of 1e-3 (e.g. `100`
        /// = 10%). Stored as an integer so the choice stays `Eq`/hashable
        /// and codec-exact.
        trim_milli: u32,
    },
}

impl EstimatorChoice {
    /// Default robust fallback used by breakdown auto-switching.
    pub const ROBUST_DEFAULT: EstimatorChoice = EstimatorChoice::MedianOfMeans { blocks: 8 };

    /// Number of blocks a stream should allocate to be able to serve this
    /// choice (Welford still allocates the default 8 so the estimator can
    /// be switched mid-run without losing history).
    pub fn block_count(&self) -> usize {
        match *self {
            EstimatorChoice::Welford => 8,
            EstimatorChoice::MedianOfMeans { blocks }
            | EstimatorChoice::TrimmedMean { blocks, .. } => blocks.max(2) as usize,
        }
    }

    /// The trim fraction per tail (0 for non-trimmed estimators).
    pub fn trim_fraction(&self) -> f64 {
        match *self {
            EstimatorChoice::TrimmedMean { trim_milli, .. } => f64::from(trim_milli) / 1000.0,
            _ => 0.0,
        }
    }

    /// Human-readable label (`welford`, `mom:blocks=8`, ...).
    pub fn label(&self) -> String {
        match *self {
            EstimatorChoice::Welford => "welford".to_string(),
            EstimatorChoice::MedianOfMeans { blocks } => format!("mom:blocks={blocks}"),
            EstimatorChoice::TrimmedMean { blocks, trim_milli } => {
                format!(
                    "trimmed:blocks={blocks}:trim={}",
                    f64::from(trim_milli) / 1000.0
                )
            }
        }
    }

    /// Parse the `NSX_ESTIMATOR` grammar: `welford`, `mom[:blocks=N]`,
    /// `trimmed[:blocks=N][:trim=F]` (trim is the per-tail fraction).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or("").trim();
        let mut blocks: u32 = 8;
        let mut trim_milli: u32 = 100;
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            match key.trim() {
                "blocks" => {
                    let b: u32 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("invalid blocks '{value}'"))?;
                    if b < 2 {
                        return Err(format!("blocks must be >= 2, got {b}"));
                    }
                    blocks = b;
                }
                "trim" => {
                    let f: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("invalid trim '{value}'"))?;
                    if !(0.0..0.5).contains(&f) {
                        return Err(format!("trim must be in [0, 0.5), got {f}"));
                    }
                    trim_milli = (f * 1000.0).round() as u32;
                }
                other => return Err(format!("unknown estimator key '{other}'")),
            }
        }
        match name {
            "" | "welford" | "mean" => Ok(EstimatorChoice::Welford),
            "mom" | "median_of_means" => Ok(EstimatorChoice::MedianOfMeans { blocks }),
            "trimmed" | "trimmed_mean" => Ok(EstimatorChoice::TrimmedMean { blocks, trim_milli }),
            other => Err(format!("unknown estimator '{other}'")),
        }
    }

    /// Read `NSX_ESTIMATOR`, defaulting to Welford. Panics on an invalid
    /// spec (misconfiguration must be loud).
    pub fn from_env() -> Self {
        match std::env::var("NSX_ESTIMATOR") {
            Ok(spec) => match Self::parse(&spec) {
                Ok(e) => e,
                Err(err) => panic!("invalid NSX_ESTIMATOR='{spec}': {err}"),
            },
            Err(_) => EstimatorChoice::Welford,
        }
    }

    /// Serialize (tag + parameters) for checkpointing.
    pub fn save(&self, w: &mut Writer) {
        match *self {
            EstimatorChoice::Welford => {
                w.put_u8(0);
                w.put_u32(0);
                w.put_u32(0);
            }
            EstimatorChoice::MedianOfMeans { blocks } => {
                w.put_u8(1);
                w.put_u32(blocks);
                w.put_u32(0);
            }
            EstimatorChoice::TrimmedMean { blocks, trim_milli } => {
                w.put_u8(2);
                w.put_u32(blocks);
                w.put_u32(trim_milli);
            }
        }
    }

    /// Reconstruct from bytes written by [`save`](Self::save).
    pub fn load(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = r.take_u8()?;
        let blocks = r.take_u32()?;
        let trim_milli = r.take_u32()?;
        match tag {
            0 => Ok(EstimatorChoice::Welford),
            1 if blocks >= 2 => Ok(EstimatorChoice::MedianOfMeans { blocks }),
            2 if blocks >= 2 && trim_milli < 500 => {
                Ok(EstimatorChoice::TrimmedMean { blocks, trim_milli })
            }
            _ => Err(CodecError::Tag {
                what: "EstimatorChoice",
                tag,
            }),
        }
    }
}

/// Streaming central moments up to order four (one-pass Pébay updates).
///
/// Powers the online tail diagnostic: the excess kurtosis of the unit
/// samples is the cheapest sufficient statistic that separates Gaussian
/// noise (`g2 ≈ 0`) from heavy tails (`g2` large or diverging with `n`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl Moments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        let n0 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` below two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population excess kurtosis `g2 = n·m4/m2² − 3` (`NaN` below four
    /// observations or when the variance is zero).
    pub fn excess_kurtosis(&self) -> f64 {
        if self.n < 4 || self.m2 <= 0.0 {
            f64::NAN
        } else {
            (self.n as f64) * self.m4 / (self.m2 * self.m2) - 3.0
        }
    }

    /// Serialize for checkpointing.
    pub fn save(&self, w: &mut Writer) {
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.m3);
        w.put_f64(self.m4);
    }

    /// Reconstruct from bytes written by [`save`](Self::save).
    pub fn load(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Moments {
            n: r.take_u64()?,
            mean: r.take_f64()?,
            m2: r.take_f64()?,
            m3: r.take_f64()?,
            m4: r.take_f64()?,
        })
    }
}

/// Round-robin block-mean accumulator: the sufficient statistics behind
/// median-of-means and trimmed-mean estimation.
///
/// Sample `i` (by arrival order) lands in block `i mod B`, each block
/// keeping only `(count, mean)`. Assignment is by arrival index, so the
/// block contents are independent of how extensions were batched — the
/// estimator is a pure function of the sample sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeans {
    total: u64,
    counts: Vec<u64>,
    means: Vec<f64>,
}

impl BlockMeans {
    /// An accumulator with `blocks` empty blocks (at least 2).
    pub fn new(blocks: usize) -> Self {
        let blocks = blocks.max(2);
        BlockMeans {
            total: 0,
            counts: vec![0; blocks],
            means: vec![0.0; blocks],
        }
    }

    /// Fold one observation into its round-robin block.
    pub fn push(&mut self, x: f64) {
        let idx = (self.total % self.counts.len() as u64) as usize;
        self.total += 1;
        self.counts[idx] += 1;
        self.means[idx] += (x - self.means[idx]) / self.counts[idx] as f64;
    }

    /// Total observations folded in.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.counts.len()
    }

    /// Means of the non-empty blocks, in block order.
    fn filled(&self) -> Vec<f64> {
        self.counts
            .iter()
            .zip(&self.means)
            .filter(|(&c, _)| c > 0)
            .map(|(_, &m)| m)
            .collect()
    }

    /// Median-of-means location and a robust standard error.
    ///
    /// The location is the median of the non-empty block means; the scale is
    /// the MAD of the block means rescaled to a standard deviation
    /// (`×1.4826` for Gaussian consistency), divided by `√B` and rescaled
    /// by `√(π/2)` (the efficiency of a median relative to a mean). Returns
    /// `None` when no sample has arrived. A non-finite or zero scale is
    /// reported as `f64::INFINITY` — "unknown error", never "no error".
    pub fn median_of_means(&self) -> Option<(f64, f64)> {
        let mut ms = self.filled();
        if ms.is_empty() {
            return None;
        }
        ms.sort_by(f64::total_cmp);
        let med = quantile_sorted(&ms, 0.5);
        let mut dev: Vec<f64> = ms.iter().map(|&m| (m - med).abs()).collect();
        dev.sort_by(f64::total_cmp);
        let mad = quantile_sorted(&dev, 0.5);
        let scale = 1.4826 * mad;
        let se = 1.2533 * scale / (ms.len() as f64).sqrt();
        let se = if se.is_finite() && se > 0.0 {
            se
        } else {
            f64::INFINITY
        };
        Some((med, se))
    }

    /// Trimmed-mean location (fraction `trim` of block means removed from
    /// *each* end) and its standard error from the surviving blocks'
    /// dispersion. Returns `None` when no sample has arrived; degenerate
    /// scales report `f64::INFINITY` like [`median_of_means`](Self::median_of_means).
    pub fn trimmed_mean(&self, trim: f64) -> Option<(f64, f64)> {
        let mut ms = self.filled();
        if ms.is_empty() {
            return None;
        }
        ms.sort_by(f64::total_cmp);
        let g = ((trim.clamp(0.0, 0.49) * ms.len() as f64).floor() as usize).min(ms.len() / 2);
        let kept = &ms[g..ms.len() - g];
        let kept = if kept.is_empty() { &ms[..] } else { kept };
        let mut w = Welford::new();
        for &m in kept {
            w.push(m);
        }
        let se = w.std_dev() / (ms.len() as f64).sqrt();
        let se = if se.is_finite() && se > 0.0 {
            se
        } else {
            f64::INFINITY
        };
        Some((w.mean(), se))
    }

    /// Serialize for checkpointing.
    pub fn save(&self, w: &mut Writer) {
        w.put_u64(self.total);
        w.put_u32(self.counts.len() as u32);
        for &c in &self.counts {
            w.put_u64(c);
        }
        w.put_f64_slice(&self.means);
    }

    /// Reconstruct from bytes written by [`save`](Self::save).
    pub fn load(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let total = r.take_u64()?;
        let blocks = r.take_u32()? as usize;
        if blocks < 2 {
            return Err(CodecError::Invalid {
                what: "BlockMeans blocks",
            });
        }
        let mut counts = Vec::with_capacity(blocks);
        for _ in 0..blocks {
            counts.push(r.take_u64()?);
        }
        let means = r.take_f64_vec()?;
        if means.len() != blocks {
            return Err(CodecError::Invalid {
                what: "BlockMeans means length",
            });
        }
        Ok(BlockMeans {
            total,
            counts,
            means,
        })
    }
}

/// Online tail diagnostic reported by hostile-aware streams
/// (`SampleStream::tail_report`, DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailReport {
    /// Finite samples observed so far.
    pub n: u64,
    /// Excess kurtosis of the unit samples (`NaN` until estimable).
    pub excess_kurtosis: f64,
    /// Fraction of samples falling more than six running standard
    /// deviations from the running mean.
    pub outlier_frac: f64,
}

/// A fixed-range histogram with uniform bins, matching the paper's
/// count-vs-log-ratio panels.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `bins` uniform bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// Add one observation. Out-of-range values are folded into the edge
    /// bins' overflow counters (reported separately).
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Add many observations.
    pub fn extend_from(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Bin counts (in-range only).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below `lo` / at-or-above `hi`.
    pub fn overflow(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total observations pushed, including overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }

    /// Centers of the bins.
    pub fn centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + (i as f64 + 0.5) * w)
            .collect()
    }

    /// Render as an ASCII bar chart, one bin per row.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let centers = self.centers();
        let mut out = String::new();
        for (c, n) in centers.iter().zip(&self.counts) {
            let bar = "#".repeat((*n as usize * width) / max as usize);
            out.push_str(&format!("{c:>8.2} |{bar:<width$}| {n}\n"));
        }
        if self.below + self.above > 0 {
            out.push_str(&format!(
                "  (out of range: {} below, {} at/above)\n",
                self.below, self.above
            ));
        }
        out
    }
}

/// `log10(a/b)` with clamping so that exact zeros (an optimizer landing on
/// the true minimum) do not produce infinities: values are floored at
/// `floor_value` before taking the ratio. The paper plots exactly this
/// quantity; negative means the numerator method got closer to the minimum.
pub fn log10_ratio(a: f64, b: f64, floor_value: f64) -> f64 {
    let a = a.abs().max(floor_value);
    let b = b.abs().max(floor_value);
    (a / b).log10()
}

/// Paired comparison of two methods' final minima across replicates:
/// the distribution of `log10(min_a / min_b)` plus headline fractions.
#[derive(Debug, Clone)]
pub struct PairedComparison {
    /// Per-replicate `log10(min_a/min_b)` values.
    pub log_ratios: Vec<f64>,
    /// Fraction of replicates where method A strictly beat method B
    /// (ratio < -tie_band).
    pub frac_a_wins: f64,
    /// Fraction within the tie band.
    pub frac_tie: f64,
    /// Fraction where B beat A.
    pub frac_b_wins: f64,
}

impl PairedComparison {
    /// Build from paired final minima; `tie_band` is the |log10 ratio| below
    /// which the pair counts as a tie (the paper treats ~0 as "comparable").
    pub fn new(mins_a: &[f64], mins_b: &[f64], floor_value: f64, tie_band: f64) -> Self {
        assert_eq!(mins_a.len(), mins_b.len());
        let log_ratios: Vec<f64> = mins_a
            .iter()
            .zip(mins_b)
            .map(|(&a, &b)| log10_ratio(a, b, floor_value))
            .collect();
        let n = log_ratios.len().max(1) as f64;
        let a = log_ratios.iter().filter(|&&r| r < -tie_band).count() as f64;
        let b = log_ratios.iter().filter(|&&r| r > tie_band).count() as f64;
        PairedComparison {
            frac_a_wins: a / n,
            frac_b_wins: b / n,
            frac_tie: 1.0 - (a + b) / n,
            log_ratios,
        }
    }

    /// Histogram of the log ratios over `[lo, hi)`.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        h.extend_from(&self.log_ratios);
        h
    }

    /// Two-sided sign-test p-value for "the two methods are equally likely
    /// to win" — ties excluded, exact binomial tail. Small p means the win
    /// imbalance is unlikely under the null.
    pub fn sign_test_p(&self, tie_band: f64) -> f64 {
        let wins_a = self.log_ratios.iter().filter(|&&r| r < -tie_band).count() as u64;
        let wins_b = self.log_ratios.iter().filter(|&&r| r > tie_band).count() as u64;
        sign_test(wins_a, wins_b)
    }
}

/// Exact two-sided sign test: probability, under a fair coin, of a split at
/// least as extreme as `(wins_a, wins_b)`.
pub fn sign_test(wins_a: u64, wins_b: u64) -> f64 {
    let n = wins_a + wins_b;
    if n == 0 {
        return 1.0;
    }
    let k = wins_a.min(wins_b);
    // P(X <= k) for X ~ Binomial(n, 1/2), computed in log space for
    // numerical stability at large n.
    let ln_half = 0.5f64.ln();
    let mut ln_choose = 0.0; // ln C(n, 0)
    let mut tail = 0.0f64;
    for i in 0..=k {
        if i > 0 {
            ln_choose += ((n - i + 1) as f64).ln() - (i as f64).ln();
        }
        tail += (ln_choose + n as f64 * ln_half).exp();
    }
    (2.0 * tail).min(1.0)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn empty_quantile_is_nan_not_panic() {
        assert!(quantile(&[], 0.5).is_nan());
        assert!(quantile_sorted(&[], 0.0).is_nan());
        // NaN observations sort last instead of panicking the comparison.
        let with_nan = [1.0, f64::NAN, 2.0];
        assert_eq!(quantile(&with_nan, 0.0), 1.0);
        assert!(quantile(&with_nan, 1.0).is_nan());
        // Out-of-range q clamps.
        assert_eq!(quantile(&[1.0, 2.0], 7.0), 2.0);
    }

    #[test]
    fn estimator_grammar_round_trips() {
        assert_eq!(
            EstimatorChoice::parse("welford").unwrap(),
            EstimatorChoice::Welford
        );
        assert_eq!(
            EstimatorChoice::parse("mom:blocks=8").unwrap(),
            EstimatorChoice::MedianOfMeans { blocks: 8 }
        );
        assert_eq!(
            EstimatorChoice::parse("trimmed:blocks=10:trim=0.2").unwrap(),
            EstimatorChoice::TrimmedMean {
                blocks: 10,
                trim_milli: 200
            }
        );
        assert!(EstimatorChoice::parse("huber").is_err());
        assert!(EstimatorChoice::parse("mom:blocks=1").is_err());
        assert!(EstimatorChoice::parse("trimmed:trim=0.5").is_err());
        for spec in ["welford", "mom:blocks=4", "trimmed:blocks=6:trim=0.1"] {
            let e = EstimatorChoice::parse(spec).unwrap();
            let mut w = Writer::new();
            e.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(EstimatorChoice::load(&mut r).unwrap(), e, "{spec}");
            r.finish().unwrap();
        }
    }

    #[test]
    fn moments_match_welford_and_detect_kurtosis() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37 % 101) as f64).sin()).collect();
        let mut m = Moments::new();
        let mut w = Welford::new();
        for &x in &data {
            m.push(x);
            w.push(x);
        }
        assert!((m.mean() - w.mean()).abs() < 1e-12);
        assert!((m.variance() - w.variance()).abs() < 1e-10);
        // A two-point symmetric distribution (±1) has kurtosis 1 → g2 = −2;
        // add rare large spikes and g2 goes strongly positive.
        let mut flat = Moments::new();
        for i in 0..1000 {
            flat.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        assert!((flat.excess_kurtosis() + 2.0).abs() < 1e-9);
        let mut spiky = Moments::new();
        for i in 0..1000 {
            spiky.push(if i % 100 == 0 {
                30.0
            } else {
                0.1 * (i as f64).sin()
            });
        }
        assert!(spiky.excess_kurtosis() > 10.0);
        // Codec round trip.
        let mut wtr = Writer::new();
        spiky.save(&mut wtr);
        let bytes = wtr.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Moments::load(&mut r).unwrap(), spiky);
    }

    #[test]
    fn block_means_round_robin_and_estimators() {
        let mut b = BlockMeans::new(4);
        for i in 0..12 {
            b.push(i as f64);
        }
        // Block j holds {j, j+4, j+8} → mean j + 4.
        assert_eq!(b.total(), 12);
        let (mom, se) = b.median_of_means().unwrap();
        assert!((mom - 5.5).abs() < 1e-12, "mom {mom}");
        assert!(se.is_finite() && se > 0.0);
        let (tm, _) = b.trimmed_mean(0.25).unwrap();
        assert!((tm - 5.5).abs() < 1e-12, "trimmed {tm}");
        // Empty accumulator has no estimate.
        assert!(BlockMeans::new(4).median_of_means().is_none());
        // Codec round trip.
        let mut w = Writer::new();
        b.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(BlockMeans::load(&mut r).unwrap(), b);
        r.finish().unwrap();
    }

    #[test]
    fn median_of_means_shrugs_off_contamination() {
        // 5% of samples are 1000σ spikes: the block-mean median must stay
        // near the true location while the plain mean is dragged away.
        let mut b = BlockMeans::new(8);
        let mut w = Welford::new();
        for i in 0..400u64 {
            let x = if i % 20 == 7 {
                1000.0
            } else {
                (crate::rng::PerSampleRng::new(3, i).normal()) + 5.0
            };
            b.push(x);
            w.push(x);
        }
        let (mom, _) = b.median_of_means().unwrap();
        assert!((mom - 5.0).abs() < 20.0, "mom {mom}");
        assert!((w.mean() - 5.0).abs() > 40.0, "mean {}", w.mean());
    }

    #[test]
    fn degenerate_block_scale_reports_infinite_error() {
        // All-identical samples → MAD 0 → the scale must degrade to +inf
        // ("unknown"), never 0 ("certain").
        let mut b = BlockMeans::new(4);
        for _ in 0..16 {
            b.push(2.0);
        }
        let (loc, se) = b.median_of_means().unwrap();
        assert_eq!(loc, 2.0);
        assert!(se.is_infinite());
    }

    #[test]
    fn welford_matches_closed_form() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 4.0 * 8/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        let mut left = Welford::new();
        let mut right = Welford::new();
        for (i, &x) in data.iter().enumerate() {
            all.push(x);
            if i < 37 {
                left.push(x)
            } else {
                right.push(x)
            }
        }
        let merged = left.merge(&right);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-12);
        assert!((merged.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert!(w.variance().is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_eq!(quantile(&data, 0.5), 2.5);
        assert!((quantile(&data, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 5.5, 9.99, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.overflow(), (1, 2));
        assert_eq!(h.total(), 8);
        assert_eq!(h.centers()[0], 1.0);
    }

    #[test]
    fn histogram_renders_without_panic() {
        let mut h = Histogram::new(-2.0, 2.0, 4);
        h.extend_from(&[-1.5, 0.0, 0.1, 1.5, 1.5]);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn log_ratio_clamps_zeros() {
        assert_eq!(log10_ratio(0.0, 1.0, 1e-12), -12.0);
        assert_eq!(log10_ratio(1.0, 0.0, 1e-12), 12.0);
        assert_eq!(log10_ratio(100.0, 1.0, 1e-12), 2.0);
    }

    #[test]
    fn sign_test_values() {
        // Balanced split: p = 1.
        assert!((sign_test(5, 5) - 1.0).abs() < 0.3);
        // 10-0: p = 2 * (1/2)^10 ≈ 0.00195.
        assert!((sign_test(10, 0) - 2.0 * 0.5f64.powi(10)).abs() < 1e-12);
        // Empty: no evidence.
        assert_eq!(sign_test(0, 0), 1.0);
        // Symmetry.
        assert!((sign_test(3, 12) - sign_test(12, 3)).abs() < 1e-12);
        // Monotone: more extreme splits are less likely.
        assert!(sign_test(9, 1) < sign_test(7, 3));
    }

    #[test]
    fn paired_sign_test_detects_dominance() {
        let a = vec![1e-6; 12];
        let b = vec![1.0; 12];
        let c = PairedComparison::new(&a, &b, 1e-12, 0.25);
        assert!(c.sign_test_p(0.25) < 0.001);
        let even: Vec<f64> = (0..12)
            .map(|i| if i % 2 == 0 { 1e-6 } else { 1e6 })
            .collect();
        let c2 = PairedComparison::new(&even, &b, 1e-12, 0.25);
        assert!(c2.sign_test_p(0.25) > 0.5);
    }

    #[test]
    fn paired_comparison_fractions() {
        let a = [1e-6, 1.0, 1.0, 1e3];
        let b = [1.0, 1.0, 1e-6, 1.0];
        let c = PairedComparison::new(&a, &b, 1e-12, 0.5);
        assert!((c.frac_a_wins - 0.25).abs() < 1e-12);
        assert!((c.frac_b_wins - 0.5).abs() < 1e-12);
        assert!((c.frac_tie - 0.25).abs() < 1e-12);
        let h = c.histogram(-8.0, 8.0, 16);
        assert_eq!(h.total(), 4);
    }
}
