//! The analytic test-function suite.
//!
//! * [`Rosenbrock`] — Eq. 3.1/3.2 of the paper (the "banana" valley); the
//!   main workload for Tables 3.1–3.2 and Figs 3.4–3.18.
//! * [`Powell`] — Eq. 3.3; the workload for Fig. 3.6.
//! * [`Sphere`], [`BoxWilsonQuadratic`] — smooth sanity workloads (Box &
//!   Wilson 1951 is the original noisy-quadratic response-surface problem).
//! * [`Rastrigin`] — a multimodal stress test (future-work suite extension).
//! * [`McKinnon`] — the classic Nelder–Mead counterexample where DET stalls.

use crate::objective::Objective;

/// The generalized Rosenbrock function in `d ≥ 2` dimensions:
///
/// ```text
/// f(θ) = Σ_{i=1}^{d-1} (1 − θ_i)² + 100 (θ_{i+1} − θ_i²)²
/// ```
///
/// Global minimum `f(1,…,1) = 0`.
#[derive(Debug, Clone, Copy)]
pub struct Rosenbrock {
    dim: usize,
}

impl Rosenbrock {
    /// Rosenbrock in `dim` dimensions (`dim ≥ 2`).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 2, "Rosenbrock requires dim >= 2");
        Rosenbrock { dim }
    }
}

impl Objective for Rosenbrock {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim);
        let mut s = 0.0;
        for i in 0..self.dim - 1 {
            let a = 1.0 - x[i];
            let b = x[i + 1] - x[i] * x[i];
            s += a * a + 100.0 * b * b;
        }
        s
    }

    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(vec![1.0; self.dim])
    }

    fn minimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Powell's singular function (Eq. 3.3), 4-dimensional:
///
/// ```text
/// f(θ) = (θ1 + 10θ2)² + 5(θ3 − θ4)² + (θ2 − 2θ3)⁴ + 10(θ1 − θ4)⁴
/// ```
///
/// Global minimum `f(0,0,0,0) = 0` with a singular Hessian at the optimum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Powell;

impl Objective for Powell {
    fn dim(&self) -> usize {
        4
    }

    fn value(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), 4);
        let a = x[0] + 10.0 * x[1];
        let b = x[2] - x[3];
        let c = x[1] - 2.0 * x[2];
        let d = x[0] - x[3];
        a * a + 5.0 * b * b + c.powi(4) + 10.0 * d.powi(4)
    }

    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(vec![0.0; 4])
    }

    fn minimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// The sphere `f(θ) = Σ θ_i²`.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    dim: usize,
}

impl Sphere {
    /// Sphere in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Sphere { dim }
    }
}

impl Objective for Sphere {
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }
    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(vec![0.0; self.dim])
    }
    fn minimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// A general positive-definite quadratic `f(θ) = Σ a_i (θ_i − c_i)²` — the
/// Box & Wilson (1951) noisy response-surface setting.
#[derive(Debug, Clone)]
pub struct BoxWilsonQuadratic {
    /// Per-axis curvatures (all must be > 0).
    pub curvatures: Vec<f64>,
    /// Location of the optimum.
    pub center: Vec<f64>,
}

impl BoxWilsonQuadratic {
    /// Isotropic quadratic with unit curvature centered at `center`.
    pub fn isotropic(center: Vec<f64>) -> Self {
        let d = center.len();
        BoxWilsonQuadratic {
            curvatures: vec![1.0; d],
            center,
        }
    }

    /// General axis-aligned quadratic.
    pub fn new(curvatures: Vec<f64>, center: Vec<f64>) -> Self {
        assert_eq!(curvatures.len(), center.len());
        assert!(curvatures.iter().all(|&a| a > 0.0));
        BoxWilsonQuadratic { curvatures, center }
    }
}

impl Objective for BoxWilsonQuadratic {
    fn dim(&self) -> usize {
        self.center.len()
    }
    fn value(&self, x: &[f64]) -> f64 {
        x.iter()
            .zip(&self.center)
            .zip(&self.curvatures)
            .map(|((&xi, &ci), &ai)| ai * (xi - ci) * (xi - ci))
            .sum()
    }
    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(self.center.clone())
    }
    fn minimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Rastrigin: `f(θ) = 10d + Σ (θ_i² − 10 cos 2πθ_i)` — highly multimodal.
#[derive(Debug, Clone, Copy)]
pub struct Rastrigin {
    dim: usize,
}

impl Rastrigin {
    /// Rastrigin in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Rastrigin { dim }
    }
}

impl Objective for Rastrigin {
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        let two_pi = std::f64::consts::TAU;
        10.0 * self.dim as f64
            + x.iter()
                .map(|&v| v * v - 10.0 * (two_pi * v).cos())
                .sum::<f64>()
    }
    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(vec![0.0; self.dim])
    }
    fn minimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// McKinnon's 2-d counterexample on which classical Nelder–Mead converges to
/// a non-stationary point from a specific start:
///
/// ```text
/// f(x, y) = θφ|x|^τ + y + y²   (x ≤ 0)
///           θ x^τ    + y + y²   (x > 0)
/// ```
///
/// with the standard choice `τ = 2, θ = 6, φ = 60`. Minimum at `(0, −1/2)`,
/// value `−1/4`.
#[derive(Debug, Clone, Copy)]
pub struct McKinnon {
    tau: f64,
    theta: f64,
    phi: f64,
}

impl Default for McKinnon {
    fn default() -> Self {
        McKinnon {
            tau: 2.0,
            theta: 6.0,
            phi: 60.0,
        }
    }
}

impl Objective for McKinnon {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        let (a, y) = (x[0], x[1]);
        let head = if a <= 0.0 {
            self.theta * self.phi * a.abs().powf(self.tau)
        } else {
            self.theta * a.powf(self.tau)
        };
        head + y + y * y
    }
    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(vec![0.0, -0.5])
    }
    fn minimum(&self) -> Option<f64> {
        Some(-0.25)
    }
}

/// A deterministic objective defined by a closure (for user code and tests).
pub struct FnObjective<F: Fn(&[f64]) -> f64 + Sync> {
    dim: usize,
    f: F,
}

impl<F: Fn(&[f64]) -> f64 + Sync> FnObjective<F> {
    /// Wrap closure `f` over a `dim`-dimensional space.
    pub fn new(dim: usize, f: F) -> Self {
        FnObjective { dim, f }
    }
}

impl<F: Fn(&[f64]) -> f64 + Sync> Objective for FnObjective<F> {
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_min<O: Objective>(obj: &O) {
        let m = obj.minimizer().unwrap();
        let fm = obj.minimum().unwrap();
        assert!(
            (obj.value(&m) - fm).abs() < 1e-12,
            "value at minimizer {} != {}",
            obj.value(&m),
            fm
        );
    }

    #[test]
    fn rosenbrock_minimum_and_values() {
        let r3 = Rosenbrock::new(3);
        assert_min(&r3);
        // Hand-computed: f(0,0,0) = 2 terms of (1-0)^2 = 2.
        assert_eq!(r3.value(&[0.0, 0.0, 0.0]), 2.0);
        // f(-1,1,1): (1-(-1))^2 + 100(1-1)^2 + (1-1)^2 + 100(1-1)^2 = 4
        assert_eq!(r3.value(&[-1.0, 1.0, 1.0]), 4.0);
        let r4 = Rosenbrock::new(4);
        assert_min(&r4);
        assert_eq!(r4.value(&[0.0, 0.0, 0.0, 0.0]), 3.0);
    }

    #[test]
    fn rosenbrock_valley_is_lower_than_walls() {
        let r = Rosenbrock::new(2);
        // Along the parabola x2 = x1^2 the 100(..)^2 term vanishes.
        assert!(r.value(&[0.5, 0.25]) < r.value(&[0.5, 1.0]));
    }

    #[test]
    #[should_panic]
    fn rosenbrock_rejects_dim_1() {
        let _ = Rosenbrock::new(1);
    }

    #[test]
    fn powell_minimum_and_symmetry() {
        assert_min(&Powell);
        // Hand-computed at (3, -1, 0, 1):
        // (3-10)^2 + 5(0-1)^2 + (-1)^4 + 10(3-1)^4 = 49 + 5 + 1 + 160 = 215
        assert_eq!(Powell.value(&[3.0, -1.0, 0.0, 1.0]), 215.0);
    }

    #[test]
    fn sphere_and_quadratic() {
        assert_min(&Sphere::new(5));
        assert_eq!(Sphere::new(3).value(&[1.0, 2.0, 2.0]), 9.0);
        let q = BoxWilsonQuadratic::new(vec![2.0, 3.0], vec![1.0, -1.0]);
        assert_min(&q);
        assert_eq!(q.value(&[2.0, 0.0]), 2.0 + 3.0);
    }

    #[test]
    fn rastrigin_minimum_and_multimodality() {
        let r = Rastrigin::new(2);
        assert_min(&r);
        // Local minima near integer lattice points have value > 0.
        assert!(r.value(&[1.0, 0.0]) > 0.9);
    }

    #[test]
    fn mckinnon_minimum_and_kink() {
        let m = McKinnon::default();
        assert_min(&m);
        // Continuous across x = 0 but much steeper on the negative side.
        let eps = 1e-3;
        assert!(m.value(&[-eps, 0.0]) > m.value(&[eps, 0.0]));
    }

    #[test]
    fn fn_objective_wraps_closures() {
        let o = FnObjective::new(2, |x: &[f64]| x[0] + x[1]);
        assert_eq!(o.dim(), 2);
        assert_eq!(o.value(&[1.0, 2.0]), 3.0);
    }
}
