//! `stoch-eval` — the noisy-evaluation substrate for stochastic optimization.
//!
//! This crate models objective functions whose evaluation is a *sampling*
//! process, following Chahal (2011), Eq. 1.1–1.2: the observed value at a
//! point `θ` after sampling for virtual time `t` is
//!
//! ```text
//! g(θ) = f(θ) + ε(t),     ε(t) ~ N(0, σ0(θ)² / t)
//! ```
//!
//! Sampling longer shrinks the noise as `1/√t`. Crucially, extending a
//! point's sampling time *refines* the running estimate rather than redrawing
//! an independent value — see [`sampler::GaussianStream`].
//!
//! The crate provides:
//!
//! * [`objective`] — the [`objective::StochasticObjective`] /
//!   [`objective::SampleStream`] traits every optimizer in the workspace is
//!   generic over, plus the deterministic [`objective::Objective`] trait.
//! * [`backend`] — the [`backend::SamplingBackend`] seam: batches of stream
//!   extensions execute through a backend (serial by default; the
//!   `mw-framework` crate provides a thread-pool one).
//! * [`sampler`] — the consistent Gaussian sampling stream and an empirical
//!   (batch-based) error estimator.
//! * [`noise`] — noise-magnitude models (`σ0(θ)`).
//! * [`functions`] — the analytic test suite (Rosenbrock, Powell, sphere,
//!   Box–Wilson quadratic, Rastrigin, McKinnon).
//! * [`clock`] — virtual-time accounting (serial and parallel modes).
//! * [`codec`] — the hand-rolled little-endian binary codec (plus CRC-32)
//!   used by checkpoint/resume; streams persist their state through it.
//! * [`stats`] — Welford accumulators, quantiles, histograms, and the paired
//!   log-ratio analysis used by the paper's comparison figures.
//! * [`rng`] — reproducible, splittable seeding.

#![warn(missing_docs)]

pub mod backend;
pub mod clock;
pub mod codec;
pub mod functions;
pub mod functions_ext;
pub mod noise;
pub mod objective;
pub mod rng;
pub mod sampler;
pub mod stats;

pub use backend::{SamplingBackend, SerialBackend, StreamJob};
pub use clock::{TimeMode, VirtualClock};
pub use codec::{crc32, CodecError, Reader, Writer};
pub use functions::{BoxWilsonQuadratic, McKinnon, Powell, Rastrigin, Rosenbrock, Sphere};
pub use functions_ext::{Ackley, Griewank, IllConditionedQuadratic, Levy, Zakharov};
pub use noise::{
    ConstantNoise, DriftSpec, NoiseDistribution, NoiseModel, RelativeNoise, ZeroNoise,
};
pub use objective::{Estimate, Objective, SampleStream, StochasticObjective};
pub use rng::PerSampleRng;
pub use sampler::{EmpiricalStream, GaussianStream, HostileStream, Noisy, NormalSource};
pub use stats::{BlockMeans, EstimatorChoice, Histogram, Moments, Summary, TailReport, Welford};
