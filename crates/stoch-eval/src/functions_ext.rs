//! Extended test-function suite (the paper's §5.2 future work: "the suite
//! of test problems ... should be enlarged to include test problems
//! exhibiting diverse factors like degree of difficulty, dimensionality of
//! system, response surface geometry").
//!
//! * [`Ackley`] — exponential flat plateau with a needle-like basin.
//! * [`Griewank`] — oscillatory product term over a parabolic bowl.
//! * [`Zakharov`] — ill-conditioned polynomial valley.
//! * [`Levy`] — sinusoidal multimodality with a unique global optimum.
//! * [`IllConditionedQuadratic`] — tunable condition number.

use crate::objective::Objective;
use std::f64::consts::{PI, TAU};

/// Ackley's function: global minimum 0 at the origin, nearly flat far away.
#[derive(Debug, Clone, Copy)]
pub struct Ackley {
    dim: usize,
}

impl Ackley {
    /// Ackley in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Ackley { dim }
    }
}

impl Objective for Ackley {
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        let n = self.dim as f64;
        let sum_sq: f64 = x.iter().map(|v| v * v).sum();
        let sum_cos: f64 = x.iter().map(|v| (TAU * v).cos()).sum();
        -20.0 * (-0.2 * (sum_sq / n).sqrt()).exp() - (sum_cos / n).exp()
            + 20.0
            + std::f64::consts::E
    }
    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(vec![0.0; self.dim])
    }
    fn minimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Griewank's function: `1 + Σx²/4000 − Π cos(x_i/√i)`.
#[derive(Debug, Clone, Copy)]
pub struct Griewank {
    dim: usize,
}

impl Griewank {
    /// Griewank in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Griewank { dim }
    }
}

impl Objective for Griewank {
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        let sum: f64 = x.iter().map(|v| v * v).sum::<f64>() / 4000.0;
        let prod: f64 = x
            .iter()
            .enumerate()
            .map(|(i, v)| (v / ((i + 1) as f64).sqrt()).cos())
            .product();
        1.0 + sum - prod
    }
    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(vec![0.0; self.dim])
    }
    fn minimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Zakharov's function: `Σx² + (Σ 0.5 i x_i)² + (Σ 0.5 i x_i)⁴`.
#[derive(Debug, Clone, Copy)]
pub struct Zakharov {
    dim: usize,
}

impl Zakharov {
    /// Zakharov in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Zakharov { dim }
    }
}

impl Objective for Zakharov {
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        let s1: f64 = x.iter().map(|v| v * v).sum();
        let s2: f64 = x
            .iter()
            .enumerate()
            .map(|(i, v)| 0.5 * (i + 1) as f64 * v)
            .sum();
        s1 + s2 * s2 + s2.powi(4)
    }
    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(vec![0.0; self.dim])
    }
    fn minimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Levy's function: multimodal with global minimum 0 at `(1, …, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct Levy {
    dim: usize,
}

impl Levy {
    /// Levy in `dim` dimensions.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Levy { dim }
    }
}

impl Objective for Levy {
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        let w: Vec<f64> = x.iter().map(|&v| 1.0 + (v - 1.0) / 4.0).collect();
        let n = w.len();
        let head = (PI * w[0]).sin().powi(2);
        let mid: f64 = w[..n - 1]
            .iter()
            .map(|&wi| (wi - 1.0).powi(2) * (1.0 + 10.0 * (PI * wi + 1.0).sin().powi(2)))
            .sum();
        let tail = (w[n - 1] - 1.0).powi(2) * (1.0 + (TAU * w[n - 1]).sin().powi(2));
        head + mid + tail
    }
    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(vec![1.0; self.dim])
    }
    fn minimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// An axis-aligned quadratic with a specified condition number: curvatures
/// spread geometrically from 1 to `condition`.
#[derive(Debug, Clone)]
pub struct IllConditionedQuadratic {
    dim: usize,
    condition: f64,
}

impl IllConditionedQuadratic {
    /// Quadratic in `dim` dimensions with condition number `condition ≥ 1`.
    pub fn new(dim: usize, condition: f64) -> Self {
        assert!(dim >= 1 && condition >= 1.0);
        IllConditionedQuadratic { dim, condition }
    }

    /// Per-axis curvature.
    pub fn curvature(&self, i: usize) -> f64 {
        if self.dim == 1 {
            return 1.0;
        }
        self.condition.powf(i as f64 / (self.dim - 1) as f64)
    }
}

impl Objective for IllConditionedQuadratic {
    fn dim(&self) -> usize {
        self.dim
    }
    fn value(&self, x: &[f64]) -> f64 {
        x.iter()
            .enumerate()
            .map(|(i, &v)| self.curvature(i) * v * v)
            .sum()
    }
    fn minimizer(&self) -> Option<Vec<f64>> {
        Some(vec![0.0; self.dim])
    }
    fn minimum(&self) -> Option<f64> {
        Some(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_min<O: Objective>(obj: &O) {
        let m = obj.minimizer().unwrap();
        assert!(
            (obj.value(&m) - obj.minimum().unwrap()).abs() < 1e-10,
            "value at minimizer = {}",
            obj.value(&m)
        );
    }

    #[test]
    fn ackley_minimum_and_plateau() {
        let a = Ackley::new(3);
        assert_min(&a);
        // Far away the function plateaus near 20 + e - (exp of avg cos).
        let far = a.value(&[30.0, 30.0, 30.0]);
        assert!(far > 15.0 && far < 25.0, "far = {far}");
        assert!(a.value(&[0.1, 0.0, 0.0]) > 0.1);
    }

    #[test]
    fn griewank_minimum_and_ripples() {
        let g = Griewank::new(2);
        assert_min(&g);
        // The cosine product creates local minima near multiples of pi*sqrt(i).
        assert!(g.value(&[std::f64::consts::PI, 0.0]) > g.value(&[0.0, 0.0]));
        assert!(g.value(&[100.0, 0.0]) > 2.0);
    }

    #[test]
    fn zakharov_minimum_and_coupling() {
        let z = Zakharov::new(3);
        assert_min(&z);
        // Hand-computed at (1, 0, 0): 1 + 0.25 + 0.0625 = 1.3125.
        assert!((z.value(&[1.0, 0.0, 0.0]) - 1.3125).abs() < 1e-12);
    }

    #[test]
    fn levy_minimum_and_multimodality() {
        let l = Levy::new(2);
        assert_min(&l);
        assert!(l.value(&[-6.0, 5.0]) > 1.0);
    }

    #[test]
    fn ill_conditioned_quadratic_spreads_curvature() {
        let q = IllConditionedQuadratic::new(4, 1000.0);
        assert_min(&q);
        assert_eq!(q.curvature(0), 1.0);
        assert!((q.curvature(3) - 1000.0).abs() < 1e-9);
        // The last axis is 1000x steeper than the first.
        assert!(
            (q.value(&[0.0, 0.0, 0.0, 1.0]) / q.value(&[1.0, 0.0, 0.0, 0.0]) - 1000.0).abs() < 1e-6
        );
    }
}
