//! Pluggable sampling backends: how a batch of stream extensions executes.
//!
//! Optimizers describe *what* to sample — a set of streams, each with its own
//! extension duration — and a [`SamplingBackend`] decides *how* the batch
//! runs: inline on the calling thread ([`SerialBackend`]), fanned out over a
//! worker pool (`mw-framework`'s `ThreadedBackend`), or, in the future,
//! sharded across machines. This is the seam between the paper's master
//! (simplex logic, virtual-time accounting) and its workers (sampling
//! compute), §3.1.
//!
//! # Determinism contract
//!
//! Every backend must satisfy two rules, which together make results
//! bit-identical across backends and schedules:
//!
//! 1. **Jobs are independent.** Each [`StreamJob`] owns its stream, and each
//!    stream owns its RNG (per-stream seeds from
//!    [`SeedSequence`](crate::rng::SeedSequence)); no job reads shared
//!    mutable state. Any execution order therefore produces the same
//!    per-stream results.
//! 2. **Submission order is preserved.** `extend_batch` returns the jobs in
//!    the order they were submitted, regardless of completion order, so the
//!    caller's clock charges and floating-point accumulations
//!    (`total_sampling`) sum in a fixed order.

use crate::clock::VirtualClock;
use crate::objective::{SampleStream, StochasticObjective};
use crate::rng::SeedSequence;

/// One unit of sampling work: extend `stream` by virtual duration `dt`.
///
/// The job owns the stream while it is in flight (it may be shipped to a
/// worker thread); the backend hands it back in the response.
pub struct StreamJob<S> {
    /// Caller-side slot index the stream came from (returned unchanged).
    pub slot: usize,
    /// Virtual duration to extend by.
    pub dt: f64,
    /// The owned stream state.
    pub stream: S,
}

/// Executes batches of stream extensions. See the module docs for the
/// determinism contract every implementation must uphold.
pub trait SamplingBackend<S>: Send + Sync {
    /// Extend every job's stream by its `dt` and return the jobs in
    /// submission order.
    fn extend_batch(&self, jobs: Vec<StreamJob<S>>) -> Vec<StreamJob<S>>;

    /// Short label for reports (`"serial"`, `"threaded"`).
    fn name(&self) -> &'static str;

    /// Whether the backend has permanently lost its parallel capacity and is
    /// (or will be) executing work inline on the calling thread — graceful
    /// degradation rather than an error. Inline backends never degrade;
    /// pool-backed backends report `true` once their worker-respawn budget is
    /// exhausted. Results are unaffected (the determinism contract holds
    /// through degradation); callers may surface the event in run reports.
    fn degraded(&self) -> bool {
        false
    }

    /// Opaque identity of the worker pool this backend dispatches on, if
    /// any. Inline backends return `None`. Two backends (or a backend and an
    /// objective — see
    /// [`StochasticObjective::pool_token`]) sharing a pool return the same
    /// token, which lets configuration validation detect the
    /// nested-dispatch-on-own-pool deadlock before any job is submitted.
    fn pool_token(&self) -> Option<usize> {
        None
    }
}

/// The default backend: extends every stream inline on the calling thread.
///
/// Bit-identical to the pre-seam engine behaviour; virtual-time accounting
/// still credits concurrent rounds at the max of the individual extensions,
/// it is only the *compute* that runs serially.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialBackend;

impl<S: SampleStream> SamplingBackend<S> for SerialBackend {
    fn extend_batch(&self, mut jobs: Vec<StreamJob<S>>) -> Vec<StreamJob<S>> {
        for job in &mut jobs {
            job.stream.extend(job.dt);
        }
        jobs
    }

    fn name(&self) -> &'static str {
        "serial"
    }
}

/// Open a stream at each point, extend them all for `dt` as one concurrent
/// round on `backend`, and return the estimate values (in point order).
///
/// This is the shared evaluation round used by the non-simplex optimizers
/// (PSO swarms, SPSA probe pairs, annealing/random-search candidates):
/// streams are opened in point order (one seed each, so the RNG draw
/// sequence is independent of the backend), the batch is dispatched, and
/// the clock/`total` accounting is charged in submission order.
pub fn eval_round<F: StochasticObjective>(
    backend: &dyn SamplingBackend<F::Stream>,
    objective: &F,
    points: &[Vec<f64>],
    dt: f64,
    seeds: &mut SeedSequence,
    clock: &mut VirtualClock,
    total: &mut f64,
) -> Vec<f64> {
    let jobs: Vec<StreamJob<F::Stream>> = points
        .iter()
        .enumerate()
        .map(|(slot, p)| StreamJob {
            slot,
            dt,
            stream: objective.open(p, seeds.next_seed()),
        })
        .collect();
    clock.begin_round();
    let done = backend.extend_batch(jobs);
    let mut values = Vec::with_capacity(done.len());
    for job in &done {
        clock.charge(job.dt);
        *total += job.dt;
        values.push(job.stream.estimate().value);
    }
    clock.end_round();
    values
}

/// Extend every stream in `streams` by its paired entry of `dts` as one
/// concurrent round on `backend`, charging the clock and `total` in stream
/// order.
///
/// For optimizers that keep long-lived stream collections outside the
/// engine (e.g. the Anderson structure search): the streams are drained
/// into jobs, dispatched, and written back in place.
pub fn extend_all_round<S: SampleStream>(
    backend: &dyn SamplingBackend<S>,
    streams: &mut Vec<S>,
    dts: &[f64],
    clock: &mut VirtualClock,
    total: &mut f64,
) {
    assert_eq!(streams.len(), dts.len());
    let jobs: Vec<StreamJob<S>> = streams
        .drain(..)
        .zip(dts)
        .enumerate()
        .map(|(slot, (stream, &dt))| StreamJob { slot, dt, stream })
        .collect();
    clock.begin_round();
    for job in backend.extend_batch(jobs) {
        clock.charge(job.dt);
        *total += job.dt;
        streams.push(job.stream);
    }
    clock.end_round();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimeMode;
    use crate::functions::Sphere;
    use crate::noise::ConstantNoise;
    use crate::sampler::Noisy;

    #[test]
    fn serial_backend_extends_in_place() {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let jobs = vec![
            StreamJob {
                slot: 0,
                dt: 2.0,
                stream: obj.open(&[0.0, 0.0], 1),
            },
            StreamJob {
                slot: 1,
                dt: 3.0,
                stream: obj.open(&[1.0, 1.0], 2),
            },
        ];
        let done = SerialBackend.extend_batch(jobs);
        assert_eq!(done[0].slot, 0);
        assert_eq!(done[1].slot, 1);
        assert_eq!(done[0].stream.estimate().time, 2.0);
        assert_eq!(done[1].stream.estimate().time, 3.0);
    }

    #[test]
    fn eval_round_matches_inline_loop() {
        // The helper must reproduce the exact values and accounting of the
        // historical open/extend/charge loop.
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(2.0));
        let points = vec![vec![0.5, 0.5], vec![-1.0, 2.0], vec![3.0, 0.0]];
        let dt = 1.5;

        let mut seeds_a = SeedSequence::new(9);
        let mut clock_a = VirtualClock::new(TimeMode::Parallel);
        let mut total_a = 0.0;
        let expected: Vec<f64> = {
            clock_a.begin_round();
            let vals = points
                .iter()
                .map(|p| {
                    let mut s = obj.open(p, seeds_a.next_seed());
                    s.extend(dt);
                    clock_a.charge(dt);
                    total_a += dt;
                    s.estimate().value
                })
                .collect();
            clock_a.end_round();
            vals
        };

        let mut seeds_b = SeedSequence::new(9);
        let mut clock_b = VirtualClock::new(TimeMode::Parallel);
        let mut total_b = 0.0;
        let got = eval_round(
            &SerialBackend,
            &obj,
            &points,
            dt,
            &mut seeds_b,
            &mut clock_b,
            &mut total_b,
        );
        assert_eq!(got, expected);
        assert_eq!(clock_b.elapsed(), clock_a.elapsed());
        assert_eq!(total_b, total_a);
    }

    #[test]
    fn extend_all_round_preserves_order_and_accounts() {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let mut streams = vec![obj.open(&[0.0, 0.0], 5), obj.open(&[1.0, 0.0], 6)];
        let mut clock = VirtualClock::new(TimeMode::Parallel);
        let mut total = 0.0;
        extend_all_round(
            &SerialBackend,
            &mut streams,
            &[1.0, 4.0],
            &mut clock,
            &mut total,
        );
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].estimate().time, 1.0);
        assert_eq!(streams[1].estimate().time, 4.0);
        // Parallel round: max(1, 4); total sampling: sum.
        assert_eq!(clock.elapsed(), 4.0);
        assert_eq!(total, 5.0);
    }
}
