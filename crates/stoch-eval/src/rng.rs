//! Reproducible, splittable random-number seeding.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed
//! so that experiments are exactly reproducible. Child seeds are derived with
//! a SplitMix64 mix so that streams opened at different points (or by
//! different workers) are statistically independent even when the parent
//! seeds are sequential.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One round of the SplitMix64 output function.
///
/// This is the standard finalizer used to decorrelate sequential seeds; it is
/// a bijection on `u64`, so distinct inputs always produce distinct outputs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from a parent seed and a stream index.
///
/// Used when a single experiment seed must fan out into many independent
/// streams (one per vertex, per replicate, per worker, ...).
#[inline]
pub fn child_seed(parent: u64, stream: u64) -> u64 {
    // Mix the stream index in before finalizing so that (parent, 1) and
    // (parent+1, 0) do not collide.
    splitmix64(parent ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// Construct a seeded [`StdRng`] from a `u64` seed.
#[inline]
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A small utility that hands out a sequence of independent child RNGs.
#[derive(Debug, Clone)]
pub struct SeedSequence {
    parent: u64,
    next: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `parent`.
    pub fn new(parent: u64) -> Self {
        Self { parent, next: 0 }
    }

    /// The next child seed.
    pub fn next_seed(&mut self) -> u64 {
        let s = child_seed(self.parent, self.next);
        self.next += 1;
        s
    }

    /// The next child RNG.
    pub fn next_rng(&mut self) -> StdRng {
        rng_from_seed(self.next_seed())
    }

    /// The `(parent, next)` state pair (for checkpoint serialization).
    pub fn state(&self) -> (u64, u64) {
        (self.parent, self.next)
    }

    /// Rebuild a sequence from a state pair obtained via
    /// [`state`](Self::state); the restored sequence hands out exactly the
    /// child seeds the original would have.
    pub fn from_state(parent: u64, next: u64) -> Self {
        Self { parent, next }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix64_is_injective_on_sample() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn child_seeds_do_not_collide_across_parents() {
        let mut seen = HashSet::new();
        for parent in 0..100u64 {
            for stream in 0..100u64 {
                assert!(seen.insert(child_seed(parent, stream)));
            }
        }
    }

    #[test]
    fn seed_sequence_is_reproducible() {
        let mut a = SeedSequence::new(42);
        let mut b = SeedSequence::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn seed_sequence_rngs_differ() {
        let mut s = SeedSequence::new(7);
        let x: f64 = s.next_rng().gen();
        let y: f64 = s.next_rng().gen();
        assert_ne!(x, y);
    }
}
