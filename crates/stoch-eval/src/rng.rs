//! Reproducible, splittable random-number seeding.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed
//! so that experiments are exactly reproducible. Child seeds are derived with
//! a SplitMix64 mix so that streams opened at different points (or by
//! different workers) are statistically independent even when the parent
//! seeds are sequential.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One round of the SplitMix64 output function.
///
/// This is the standard finalizer used to decorrelate sequential seeds; it is
/// a bijection on `u64`, so distinct inputs always produce distinct outputs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from a parent seed and a stream index.
///
/// Used when a single experiment seed must fan out into many independent
/// streams (one per vertex, per replicate, per worker, ...).
#[inline]
pub fn child_seed(parent: u64, stream: u64) -> u64 {
    // Mix the stream index in before finalizing so that (parent, 1) and
    // (parent+1, 0) do not collide.
    splitmix64(parent ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// Construct a seeded [`StdRng`] from a `u64` seed.
#[inline]
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A counter-based generator for *per-sample* noise draws.
///
/// Location/time-dependent noise (the hostile distributions in
/// [`crate::noise::NoiseDistribution`]) must produce draws that are a pure
/// function of `(stream seed, sample index)` — never of how `extend` calls
/// were batched or which backend worker executed them. A stateful RNG walked
/// across samples would couple the variate sequence to batching; this
/// generator instead derives an independent SplitMix64 stream for every unit
/// sample, so sample `i` sees identical bits whether it was drawn in one
/// `extend(n)` call, `n` calls of `extend(1)`, or on a retry after a worker
/// died (DESIGN.md §14).
///
/// Within one sample the generator is an ordinary sequential SplitMix64, so
/// rejection loops (polar methods) may consume a variable number of words
/// without affecting any other sample.
#[derive(Debug, Clone)]
pub struct PerSampleRng {
    base: u64,
    ctr: u64,
}

impl PerSampleRng {
    /// The generator for unit sample `index` of the stream seeded by `seed`.
    #[inline]
    pub fn new(seed: u64, index: u64) -> Self {
        PerSampleRng {
            base: child_seed(seed, index),
            ctr: 0,
        }
    }

    /// Next raw 64-bit word (SplitMix64 sequence rooted at the sample base).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let z = splitmix64(
            self.base
                .wrapping_add(self.ctr.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        self.ctr += 1;
        z
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[-1, 1)`.
    #[inline]
    pub fn symmetric(&mut self) -> f64 {
        self.uniform() * 2.0 - 1.0
    }

    /// Standard normal variate (Marsaglia polar; the spare is discarded so
    /// every sample's draw count stays self-contained).
    #[inline]
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = self.symmetric();
            let v = self.symmetric();
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Student-t variate with `nu` degrees of freedom (Bailey's polar
    /// method): for an accepted point `(u, v)` with `w = u² + v² ∈ (0, 1)`,
    /// `u · sqrt(ν (w^(−2/ν) − 1) / w)` is exactly t-distributed.
    #[inline]
    pub fn student_t(&mut self, nu: f64) -> f64 {
        loop {
            let u = self.symmetric();
            let v = self.symmetric();
            let w = u * u + v * v;
            if w > 0.0 && w < 1.0 {
                return u * (nu * (w.powf(-2.0 / nu) - 1.0) / w).sqrt();
            }
        }
    }
}

/// A small utility that hands out a sequence of independent child RNGs.
#[derive(Debug, Clone)]
pub struct SeedSequence {
    parent: u64,
    next: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `parent`.
    pub fn new(parent: u64) -> Self {
        Self { parent, next: 0 }
    }

    /// The next child seed.
    pub fn next_seed(&mut self) -> u64 {
        let s = child_seed(self.parent, self.next);
        self.next += 1;
        s
    }

    /// The next child RNG.
    pub fn next_rng(&mut self) -> StdRng {
        rng_from_seed(self.next_seed())
    }

    /// The `(parent, next)` state pair (for checkpoint serialization).
    pub fn state(&self) -> (u64, u64) {
        (self.parent, self.next)
    }

    /// Rebuild a sequence from a state pair obtained via
    /// [`state`](Self::state); the restored sequence hands out exactly the
    /// child seeds the original would have.
    pub fn from_state(parent: u64, next: u64) -> Self {
        Self { parent, next }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix64_is_injective_on_sample() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn child_seeds_do_not_collide_across_parents() {
        let mut seen = HashSet::new();
        for parent in 0..100u64 {
            for stream in 0..100u64 {
                assert!(seen.insert(child_seed(parent, stream)));
            }
        }
    }

    #[test]
    fn seed_sequence_is_reproducible() {
        let mut a = SeedSequence::new(42);
        let mut b = SeedSequence::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn per_sample_rng_is_pure_in_seed_and_index() {
        let mut a = PerSampleRng::new(42, 7);
        let mut b = PerSampleRng::new(42, 7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Distinct indices give decorrelated words.
        let mut c = PerSampleRng::new(42, 8);
        assert_ne!(PerSampleRng::new(42, 7).next_u64(), c.next_u64());
    }

    #[test]
    fn per_sample_normal_and_t_moments() {
        let n = 100_000u64;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for i in 0..n {
            let z = PerSampleRng::new(1234, i).normal();
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        // Student-t with nu = 10 has variance nu/(nu-2) = 1.25.
        let (mut sum, mut sum2) = (0.0, 0.0);
        for i in 0..n {
            let t = PerSampleRng::new(99, i).student_t(10.0);
            sum += t;
            sum2 += t * t;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "t mean {mean}");
        assert!((var - 1.25).abs() < 0.08, "t var {var}");
    }

    #[test]
    fn seed_sequence_rngs_differ() {
        let mut s = SeedSequence::new(7);
        let x: f64 = s.next_rng().gen();
        let y: f64 = s.next_rng().gen();
        assert_ne!(x, y);
    }
}
