//! Noise-magnitude models: how the inherent sampling noise `σ0(θ)` varies
//! over parameter space.
//!
//! The paper (Eq. 1.2) allows the inherent variance `(σ0_k)²` to depend on
//! the location in parameter space ("some models may be noisier than
//! others"), with no expectation that it is known ahead of time. The
//! experiments in Ch. 3 use a constant `σ0`; we provide that plus a relative
//! model for robustness testing.

use crate::objective::Objective;

/// How the inherent (per-unit-time) noise magnitude varies with location.
pub trait NoiseModel: Sync {
    /// The inherent standard deviation `σ0` at `x`, given the underlying
    /// noise-free value `f(x)` (some models scale with the signal).
    fn sigma0(&self, x: &[f64], f_value: f64) -> f64;
}

/// Constant noise magnitude everywhere (what the paper's experiments use:
/// `σ0 ∈ {1, 100, 1000}`).
#[derive(Debug, Clone, Copy)]
pub struct ConstantNoise(pub f64);

impl NoiseModel for ConstantNoise {
    fn sigma0(&self, _x: &[f64], _f: f64) -> f64 {
        self.0
    }
}

/// Noise proportional to the magnitude of the underlying value, with a floor.
///
/// Mimics sampling estimators whose variance scales with the quantity being
/// measured (e.g. pressure fluctuations in MD).
#[derive(Debug, Clone, Copy)]
pub struct RelativeNoise {
    /// Fractional noise level (e.g. `0.1` for 10%).
    pub fraction: f64,
    /// Lower bound on `σ0` so noise never vanishes entirely.
    pub floor: f64,
}

impl NoiseModel for RelativeNoise {
    fn sigma0(&self, _x: &[f64], f: f64) -> f64 {
        (self.fraction * f.abs()).max(self.floor)
    }
}

/// No noise at all — turns a stochastic wrapper into a deterministic oracle.
/// Useful for validating that the stochastic algorithms reduce to classical
/// Nelder–Mead behaviour when the noise vanishes.
#[derive(Debug, Clone, Copy)]
pub struct ZeroNoise;

impl NoiseModel for ZeroNoise {
    fn sigma0(&self, _x: &[f64], _f: f64) -> f64 {
        0.0
    }
}

/// Noise magnitude that depends on position through a user closure.
pub struct FnNoise<F: Fn(&[f64], f64) -> f64 + Sync>(pub F);

impl<F: Fn(&[f64], f64) -> f64 + Sync> NoiseModel for FnNoise<F> {
    fn sigma0(&self, x: &[f64], f: f64) -> f64 {
        (self.0)(x, f)
    }
}

/// Convenience: evaluate `σ0` for a noise model over an objective at `x`.
pub fn sigma0_at<O: Objective, N: NoiseModel>(obj: &O, noise: &N, x: &[f64]) -> f64 {
    noise.sigma0(x, obj.value(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_noise_ignores_location() {
        let n = ConstantNoise(100.0);
        assert_eq!(n.sigma0(&[0.0], 0.0), 100.0);
        assert_eq!(n.sigma0(&[1e9, -3.0], 1e12), 100.0);
    }

    #[test]
    fn relative_noise_scales_and_floors() {
        let n = RelativeNoise {
            fraction: 0.1,
            floor: 0.5,
        };
        assert_eq!(n.sigma0(&[], 100.0), 10.0);
        assert_eq!(n.sigma0(&[], -100.0), 10.0);
        assert_eq!(n.sigma0(&[], 0.0), 0.5);
        assert_eq!(n.sigma0(&[], 1.0), 0.5);
    }

    #[test]
    fn zero_noise_is_zero() {
        assert_eq!(ZeroNoise.sigma0(&[1.0], 42.0), 0.0);
    }

    #[test]
    fn fn_noise_delegates() {
        let n = FnNoise(|x: &[f64], _f| x[0].abs() + 1.0);
        assert_eq!(n.sigma0(&[3.0], 0.0), 4.0);
    }
}
