//! Noise-magnitude models: how the inherent sampling noise `σ0(θ)` varies
//! over parameter space.
//!
//! The paper (Eq. 1.2) allows the inherent variance `(σ0_k)²` to depend on
//! the location in parameter space ("some models may be noisier than
//! others"), with no expectation that it is known ahead of time. The
//! experiments in Ch. 3 use a constant `σ0`; we provide that plus a relative
//! model for robustness testing.

use crate::codec::{CodecError, Reader, Writer};
use crate::objective::Objective;
use crate::rng::PerSampleRng;

/// How the inherent (per-unit-time) noise magnitude varies with location.
pub trait NoiseModel: Sync {
    /// The inherent standard deviation `σ0` at `x`, given the underlying
    /// noise-free value `f(x)` (some models scale with the signal).
    fn sigma0(&self, x: &[f64], f_value: f64) -> f64;
}

/// Constant noise magnitude everywhere (what the paper's experiments use:
/// `σ0 ∈ {1, 100, 1000}`).
#[derive(Debug, Clone, Copy)]
pub struct ConstantNoise(pub f64);

impl NoiseModel for ConstantNoise {
    fn sigma0(&self, _x: &[f64], _f: f64) -> f64 {
        self.0
    }
}

/// Noise proportional to the magnitude of the underlying value, with a floor.
///
/// Mimics sampling estimators whose variance scales with the quantity being
/// measured (e.g. pressure fluctuations in MD).
#[derive(Debug, Clone, Copy)]
pub struct RelativeNoise {
    /// Fractional noise level (e.g. `0.1` for 10%).
    pub fraction: f64,
    /// Lower bound on `σ0` so noise never vanishes entirely.
    pub floor: f64,
}

impl NoiseModel for RelativeNoise {
    fn sigma0(&self, _x: &[f64], f: f64) -> f64 {
        (self.fraction * f.abs()).max(self.floor)
    }
}

/// No noise at all — turns a stochastic wrapper into a deterministic oracle.
/// Useful for validating that the stochastic algorithms reduce to classical
/// Nelder–Mead behaviour when the noise vanishes.
#[derive(Debug, Clone, Copy)]
pub struct ZeroNoise;

impl NoiseModel for ZeroNoise {
    fn sigma0(&self, _x: &[f64], _f: f64) -> f64 {
        0.0
    }
}

/// Noise magnitude that depends on position through a user closure.
pub struct FnNoise<F: Fn(&[f64], f64) -> f64 + Sync>(pub F);

impl<F: Fn(&[f64], f64) -> f64 + Sync> NoiseModel for FnNoise<F> {
    fn sigma0(&self, x: &[f64], f: f64) -> f64 {
        (self.0)(x, f)
    }
}

/// Nonstationary drift of the noise process over virtual time.
///
/// `σ(t) = σ_unit · (1 + sigma · sin(2πt/period))` (clamped at zero) and an
/// additive bias `σ_unit · bias · cos(2πt/period)` wander over a full period
/// of `period` virtual time units. Both modulations scale with the unit
/// standard deviation, so zero-noise streams stay exactly deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSpec {
    /// Relative amplitude of the σ modulation (0 = constant σ).
    pub sigma: f64,
    /// Bias amplitude in units of the unit standard deviation.
    pub bias: f64,
    /// Period of the wander, in virtual time units.
    pub period: f64,
}

impl DriftSpec {
    /// Defaults used by the `drift` shorthand: ±50% σ wander, ±0.5·σ bias,
    /// one full cycle every 64 time units.
    pub fn default_spec() -> Self {
        DriftSpec {
            sigma: 0.5,
            bias: 0.5,
            period: 64.0,
        }
    }
}

/// The *shape* of the per-sample noise, orthogonal to the magnitude model
/// ([`NoiseModel`], which only scales `σ0`).
///
/// The default is the paper's Gaussian (Eq. 1.2) and is bit-identical to the
/// pre-existing streams. Hostile shapes compose: a Student-t core, an
/// ε-contamination layer (rare `k·σ` spikes), and nonstationary drift can be
/// combined, e.g. `student_t:nu=3:eps=0.05:k=20` (DESIGN.md §14).
///
/// Draws are standardized to unit variance where the variance exists
/// (`ν > 2`); for `ν ≤ 2` the raw t variate is used and no finite variance
/// exists — which is exactly the regime the robust estimators are for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseDistribution {
    /// Student-t degrees of freedom of the core draw; `None` = Gaussian.
    nu: Option<f64>,
    /// Probability that a sample is a spike (ε-contamination).
    eps: f64,
    /// Spike magnitude multiplier `k` (spikes are `k · σ`-sized).
    spike: f64,
    /// Nonstationary drift, if any.
    drift: Option<DriftSpec>,
}

impl Default for NoiseDistribution {
    fn default() -> Self {
        Self::gaussian()
    }
}

impl NoiseDistribution {
    /// The paper's Gaussian noise (the default).
    pub fn gaussian() -> Self {
        NoiseDistribution {
            nu: None,
            eps: 0.0,
            spike: 0.0,
            drift: None,
        }
    }

    /// Heavy-tailed Student-t core with `nu` degrees of freedom.
    ///
    /// `ν ≤ 4` gives infinite kurtosis (naive variance estimates break
    /// down); `ν ≤ 2` gives infinite variance.
    pub fn student_t(nu: f64) -> Self {
        assert!(nu > 0.0 && nu.is_finite(), "student_t requires nu > 0");
        NoiseDistribution {
            nu: Some(nu),
            ..Self::gaussian()
        }
    }

    /// ε-contaminated Gaussian: with probability `eps` a sample's noise is
    /// multiplied by `k` (a rare huge spike).
    pub fn contaminated(eps: f64, k: f64) -> Self {
        Self::gaussian().with_contamination(eps, k)
    }

    /// Gaussian core with nonstationary drift.
    pub fn drifting(spec: DriftSpec) -> Self {
        NoiseDistribution {
            drift: Some(spec),
            ..Self::gaussian()
        }
    }

    /// Layer ε-contamination on top of the current core.
    pub fn with_contamination(mut self, eps: f64, k: f64) -> Self {
        assert!((0.0..=1.0).contains(&eps), "eps must be in [0, 1]");
        assert!(k.is_finite(), "spike multiplier must be finite");
        self.eps = eps;
        self.spike = k;
        self
    }

    /// Layer nonstationary drift on top of the current core.
    pub fn with_drift(mut self, spec: DriftSpec) -> Self {
        assert!(
            spec.period > 0.0 && spec.period.is_finite(),
            "drift period must be positive"
        );
        self.drift = Some(spec);
        self
    }

    /// Whether this is exactly the paper's Gaussian model (no hostile layer
    /// active) — the condition for [`crate::sampler::Noisy`] to keep using
    /// the bit-identical legacy streams.
    pub fn is_gaussian(&self) -> bool {
        self.nu.is_none() && self.eps == 0.0 && self.drift.is_none()
    }

    /// Human-readable label (`student_t(nu=3)+eps=0.05,k=20`, ...).
    pub fn label(&self) -> String {
        let mut s = match self.nu {
            None => "gaussian".to_string(),
            Some(nu) => format!("student_t(nu={nu})"),
        };
        if self.eps > 0.0 {
            s.push_str(&format!("+eps={},k={}", self.eps, self.spike));
        }
        if let Some(d) = self.drift {
            s.push_str(&format!(
                "+drift(sigma={},bias={},period={})",
                d.sigma, d.bias, d.period
            ));
        }
        s
    }

    /// Parse the `NSX_NOISE` grammar: `<shape>[:key=value]*` with shapes
    /// `gaussian`, `student_t` (alias `t`), `contaminated`, `drift` and keys
    /// `nu`, `eps`, `k`, `sigma`, `bias`, `period`. Shapes only pick
    /// defaults; any key may be combined with any shape, e.g.
    /// `student_t:nu=3:eps=0.05:k=20`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(':');
        let shape = parts.next().unwrap_or("").trim();
        let mut d = match shape {
            "" | "gaussian" | "normal" => Self::gaussian(),
            "student_t" | "t" => Self::student_t(3.0),
            "contaminated" => Self::contaminated(0.05, 20.0),
            "drift" => Self::drifting(DriftSpec::default_spec()),
            other => return Err(format!("unknown noise shape '{other}'")),
        };
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            let v: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("invalid number '{value}' for '{key}'"))?;
            match key.trim() {
                "nu" => {
                    if !(v > 0.0 && v.is_finite()) {
                        return Err(format!("nu must be > 0, got {v}"));
                    }
                    d.nu = Some(v);
                }
                "eps" => {
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("eps must be in [0, 1], got {v}"));
                    }
                    d.eps = v;
                    if d.eps > 0.0 && d.spike == 0.0 {
                        d.spike = 20.0;
                    }
                }
                "k" => {
                    if !v.is_finite() {
                        return Err(format!("k must be finite, got {v}"));
                    }
                    d.spike = v;
                }
                "sigma" | "bias" | "period" => {
                    let mut spec = d.drift.unwrap_or(DriftSpec {
                        sigma: 0.0,
                        bias: 0.0,
                        period: 64.0,
                    });
                    match key.trim() {
                        "sigma" => spec.sigma = v,
                        "bias" => spec.bias = v,
                        _ => {
                            if !(v > 0.0 && v.is_finite()) {
                                return Err(format!("period must be > 0, got {v}"));
                            }
                            spec.period = v;
                        }
                    }
                    d.drift = Some(spec);
                }
                other => return Err(format!("unknown noise key '{other}'")),
            }
        }
        Ok(d)
    }

    /// Read `NSX_NOISE`, defaulting to Gaussian. Panics on an invalid spec —
    /// a misconfigured experiment must fail loudly, not silently fall back
    /// to the friendly distribution.
    pub fn from_env() -> Self {
        match std::env::var("NSX_NOISE") {
            Ok(spec) => match Self::parse(&spec) {
                Ok(d) => d,
                Err(e) => panic!("invalid NSX_NOISE='{spec}': {e}"),
            },
            Err(_) => Self::gaussian(),
        }
    }

    /// The standardized core draw for unit sample `index` of stream `seed`:
    /// unit variance where it exists, heavy tails / spikes as configured.
    ///
    /// Pure in `(seed, index)`: the draw is identical regardless of how
    /// extensions were batched or which worker executed them.
    #[inline]
    pub fn unit_variate(&self, seed: u64, index: u64) -> f64 {
        let mut rng = PerSampleRng::new(seed, index);
        // Fixed draw order (contamination coin first, then the core draw)
        // keeps the variate layout stable across parameter values.
        let spike = self.eps > 0.0 && rng.uniform() < self.eps;
        let z = match self.nu {
            None => rng.normal(),
            Some(nu) => {
                let t = rng.student_t(nu);
                if nu > 2.0 {
                    // Standardize to unit variance: Var[t_ν] = ν/(ν−2).
                    t * ((nu - 2.0) / nu).sqrt()
                } else {
                    t
                }
            }
        };
        if spike {
            z * self.spike
        } else {
            z
        }
    }

    /// One observed unit sample: underlying value `f`, unit standard
    /// deviation `unit_sd`, at stream-local virtual time `t` (for drift).
    #[inline]
    pub fn observe(&self, seed: u64, index: u64, t: f64, f: f64, unit_sd: f64) -> f64 {
        let z = self.unit_variate(seed, index);
        match self.drift {
            None => f + unit_sd * z,
            Some(d) => {
                let phase = std::f64::consts::TAU * t / d.period;
                let sigma_t = (unit_sd * (1.0 + d.sigma * phase.sin())).max(0.0);
                let bias_t = unit_sd * d.bias * phase.cos();
                f + bias_t + sigma_t * z
            }
        }
    }

    /// Serialize for checkpointing (paired with [`load`](Self::load)).
    pub fn save(&self, w: &mut Writer) {
        w.put_opt_f64(self.nu);
        w.put_f64(self.eps);
        w.put_f64(self.spike);
        match self.drift {
            None => w.put_bool(false),
            Some(d) => {
                w.put_bool(true);
                w.put_f64(d.sigma);
                w.put_f64(d.bias);
                w.put_f64(d.period);
            }
        }
    }

    /// Reconstruct from bytes written by [`save`](Self::save).
    pub fn load(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let nu = r.take_opt_f64()?;
        if let Some(nu) = nu {
            if !(nu > 0.0 && nu.is_finite()) {
                return Err(CodecError::Invalid {
                    what: "NoiseDistribution nu",
                });
            }
        }
        let eps = r.take_f64()?;
        let spike = r.take_f64()?;
        if !(0.0..=1.0).contains(&eps) || !spike.is_finite() {
            return Err(CodecError::Invalid {
                what: "NoiseDistribution contamination",
            });
        }
        let drift = if r.take_bool()? {
            let spec = DriftSpec {
                sigma: r.take_f64()?,
                bias: r.take_f64()?,
                period: r.take_f64()?,
            };
            if !(spec.period > 0.0 && spec.period.is_finite()) {
                return Err(CodecError::Invalid {
                    what: "NoiseDistribution drift period",
                });
            }
            Some(spec)
        } else {
            None
        };
        Ok(NoiseDistribution {
            nu,
            eps,
            spike,
            drift,
        })
    }
}

/// Convenience: evaluate `σ0` for a noise model over an objective at `x`.
pub fn sigma0_at<O: Objective, N: NoiseModel>(obj: &O, noise: &N, x: &[f64]) -> f64 {
    noise.sigma0(x, obj.value(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_noise_ignores_location() {
        let n = ConstantNoise(100.0);
        assert_eq!(n.sigma0(&[0.0], 0.0), 100.0);
        assert_eq!(n.sigma0(&[1e9, -3.0], 1e12), 100.0);
    }

    #[test]
    fn relative_noise_scales_and_floors() {
        let n = RelativeNoise {
            fraction: 0.1,
            floor: 0.5,
        };
        assert_eq!(n.sigma0(&[], 100.0), 10.0);
        assert_eq!(n.sigma0(&[], -100.0), 10.0);
        assert_eq!(n.sigma0(&[], 0.0), 0.5);
        assert_eq!(n.sigma0(&[], 1.0), 0.5);
    }

    #[test]
    fn zero_noise_is_zero() {
        assert_eq!(ZeroNoise.sigma0(&[1.0], 42.0), 0.0);
    }

    #[test]
    fn fn_noise_delegates() {
        let n = FnNoise(|x: &[f64], _f| x[0].abs() + 1.0);
        assert_eq!(n.sigma0(&[3.0], 0.0), 4.0);
    }

    #[test]
    fn distribution_grammar_round_trips() {
        assert_eq!(
            NoiseDistribution::parse("gaussian").unwrap(),
            NoiseDistribution::gaussian()
        );
        assert!(NoiseDistribution::parse("gaussian").unwrap().is_gaussian());
        let t3 = NoiseDistribution::parse("student_t:nu=3").unwrap();
        assert_eq!(t3, NoiseDistribution::student_t(3.0));
        assert!(!t3.is_gaussian());
        let combo = NoiseDistribution::parse("student_t:nu=3:eps=0.05:k=20").unwrap();
        assert_eq!(
            combo,
            NoiseDistribution::student_t(3.0).with_contamination(0.05, 20.0)
        );
        let drift = NoiseDistribution::parse("drift:sigma=0.3:period=10").unwrap();
        assert_eq!(
            drift,
            NoiseDistribution::drifting(DriftSpec {
                sigma: 0.3,
                bias: 0.5,
                period: 10.0
            })
        );
        // eps on its own picks a default spike size.
        let c = NoiseDistribution::parse("gaussian:eps=0.1").unwrap();
        assert_eq!(c, NoiseDistribution::contaminated(0.1, 20.0));
        assert!(NoiseDistribution::parse("cauchy").is_err());
        assert!(NoiseDistribution::parse("student_t:nu=-1").is_err());
        assert!(NoiseDistribution::parse("gaussian:eps=2").is_err());
        assert!(NoiseDistribution::parse("gaussian:nu").is_err());
    }

    #[test]
    fn distribution_codec_round_trips() {
        use crate::codec::{Reader, Writer};
        for spec in [
            "gaussian",
            "student_t:nu=2.5",
            "contaminated:eps=0.01:k=50",
            "student_t:nu=3:eps=0.05:k=20:sigma=0.4:bias=0.2:period=32",
        ] {
            let d = NoiseDistribution::parse(spec).unwrap();
            let mut w = Writer::new();
            d.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = NoiseDistribution::load(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(d, back, "{spec}");
        }
    }

    #[test]
    fn draws_are_pure_in_seed_and_index() {
        let d = NoiseDistribution::parse("student_t:nu=3:eps=0.05:k=20").unwrap();
        for i in 0..64u64 {
            assert_eq!(
                d.unit_variate(7, i).to_bits(),
                d.unit_variate(7, i).to_bits()
            );
        }
        assert_ne!(
            d.unit_variate(7, 0).to_bits(),
            d.unit_variate(8, 0).to_bits()
        );
    }

    #[test]
    fn drift_modulates_sigma_and_bias() {
        let d = NoiseDistribution::drifting(DriftSpec {
            sigma: 0.0,
            bias: 1.0,
            period: 4.0,
        });
        // With sigma modulation off and z scaled by unit_sd = 0 ... use a
        // direct check: at t = period the bias term is cos(2π) = 1.
        let x = d.observe(1, 0, 4.0, 10.0, 0.5);
        let z = d.unit_variate(1, 0);
        assert!((x - (10.0 + 0.5 + 0.5 * z)).abs() < 1e-12);
    }

    #[test]
    fn gaussian_label_and_combined_label() {
        assert_eq!(NoiseDistribution::gaussian().label(), "gaussian");
        let combo = NoiseDistribution::student_t(3.0).with_contamination(0.05, 20.0);
        assert_eq!(combo.label(), "student_t(nu=3)+eps=0.05,k=20");
    }
}
