//! Core traits: deterministic objectives, stochastic objectives, and sampling
//! streams.
//!
//! Optimizers in the `noisy-simplex` crate never see raw function values;
//! they see [`Estimate`]s produced by [`SampleStream`]s, and may ask a stream
//! to keep sampling (`extend`) to shrink its standard error. This is the
//! contract that lets the same algorithm code drive an analytic test function
//! with synthetic Gaussian noise and a molecular-dynamics simulation whose
//! noise comes from genuine thermal sampling.

/// The result of sampling a point for some amount of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Current running estimate of the objective value at the point.
    pub value: f64,
    /// Standard error of `value` (expected to shrink as `1/√t`).
    pub std_err: f64,
    /// Total virtual time the point has been sampled for.
    pub time: f64,
}

impl Estimate {
    /// An estimate with no uncertainty (used by deterministic evaluation).
    pub fn exact(value: f64) -> Self {
        Estimate {
            value,
            std_err: 0.0,
            time: 0.0,
        }
    }

    /// Lower edge of the `k`-standard-error confidence interval.
    #[inline]
    pub fn lo(&self, k: f64) -> f64 {
        self.value - k * self.std_err
    }

    /// Upper edge of the `k`-standard-error confidence interval.
    #[inline]
    pub fn hi(&self, k: f64) -> f64 {
        self.value + k * self.std_err
    }
}

/// An ongoing sampling computation at a fixed point in parameter space.
///
/// Implementations must guarantee *consistency*: extending a stream refines
/// the running estimate (variance strictly decreasing in expectation); it
/// must not redraw an independent value. See `DESIGN.md` §6.
///
/// Streams are `Send`: they own their state (including their RNG), so a
/// [`crate::backend::SamplingBackend`] may ship them to a worker thread for
/// extension and back. See `DESIGN.md` §8.
///
/// Streams are also `Clone`: a fault-tolerant backend keeps a master-side
/// copy of every stream it ships, so that when a worker is lost mid-job the
/// work can be re-issued from the copy. Because the clone carries the RNG
/// state, the re-issued extension reproduces the lost one bit for bit
/// (DESIGN.md §9).
/// Streams may additionally support *state persistence* (`save_state` /
/// `load_state`): serializing their complete state — RNG, cached variates,
/// sufficient statistics — so a checkpointed run can resume bit-identically.
/// The default implementations report [`CodecError::Unsupported`]; every
/// stream shipped in this workspace overrides them. See `DESIGN.md` §11.
///
/// [`CodecError::Unsupported`]: crate::codec::CodecError::Unsupported
pub trait SampleStream: Send + Clone {
    /// Advance sampling by virtual duration `dt > 0`.
    fn extend(&mut self, dt: f64);

    /// The current estimate (value, standard error, accumulated time).
    fn estimate(&self) -> Estimate;

    /// Serialize the complete stream state into `w` such that
    /// [`load_state`](Self::load_state) reconstructs a stream whose future
    /// behaviour is bit-identical to this one's.
    ///
    /// Default: unsupported (checkpointing degrades gracefully for streams
    /// that cannot persist).
    fn save_state(&self, _w: &mut crate::codec::Writer) -> Result<(), crate::codec::CodecError> {
        Err(crate::codec::CodecError::Unsupported {
            what: std::any::type_name::<Self>(),
        })
    }

    /// Reconstruct a stream from bytes written by
    /// [`save_state`](Self::save_state).
    fn load_state(_r: &mut crate::codec::Reader<'_>) -> Result<Self, crate::codec::CodecError>
    where
        Self: Sized,
    {
        Err(crate::codec::CodecError::Unsupported {
            what: std::any::type_name::<Self>(),
        })
    }

    /// Stable identifier naming this stream type on the wire, or `None` when
    /// the type is not wire-transferable.
    ///
    /// A multi-process sampling backend cannot ship closures; it ships
    /// [`save_state`](Self::save_state) bytes tagged with this identifier,
    /// and the worker process reconstructs the stream from a fixed registry
    /// keyed by it (DESIGN.md §12). The identifier is part of the wire
    /// format: bump it (e.g. `"gaussian.v2"`) whenever the `save_state`
    /// layout changes incompatibly. Streams that return `None` (the default)
    /// simply execute in-process — distribution degrades per stream type,
    /// never per run.
    fn wire_id() -> Option<&'static str>
    where
        Self: Sized,
    {
        None
    }

    /// Online tail diagnostic for breakdown-aware gating (DESIGN.md §14):
    /// the excess kurtosis and outlier fraction of the raw unit samples.
    /// Streams with no per-sample view (the oracle Gaussian accumulator)
    /// return `None` (the default) — no diagnostic, no false alarms.
    fn tail_report(&self) -> Option<crate::stats::TailReport> {
        None
    }

    /// Switch which estimator the stream *reports* through
    /// [`estimate`](Self::estimate). Default: ignored. Hostile-aware streams
    /// keep all sufficient statistics (Welford moments and block means) in
    /// parallel, so switching mid-run is loss-free and bit-deterministic —
    /// this is the mechanism behind breakdown auto-degradation.
    fn set_estimator(&mut self, _choice: crate::stats::EstimatorChoice) {}

    /// Number of non-finite (NaN/±Inf) raw samples the stream has quarantined
    /// at ingestion. Streams that quarantine report their estimate as `+inf`
    /// with zero standard error once this is non-zero, so a poisoned point
    /// loses every ordering comparison instead of corrupting vertex means
    /// (or panicking the ordering) silently. Default: `0` (no detection).
    fn nonfinite_samples(&self) -> u64 {
        0
    }
}

/// A deterministic multivariate objective `f: R^d -> R`.
pub trait Objective: Sync {
    /// Dimensionality `d` of the parameter space.
    fn dim(&self) -> usize;

    /// Evaluate the underlying (noise-free) function.
    fn value(&self, x: &[f64]) -> f64;

    /// Known global minimizer, if any (used by experiment measurement only).
    fn minimizer(&self) -> Option<Vec<f64>> {
        None
    }

    /// Known global minimum value, if any.
    fn minimum(&self) -> Option<f64> {
        None
    }
}

impl<T: Objective + ?Sized> Objective for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn value(&self, x: &[f64]) -> f64 {
        (**self).value(x)
    }
    fn minimizer(&self) -> Option<Vec<f64>> {
        (**self).minimizer()
    }
    fn minimum(&self) -> Option<f64> {
        (**self).minimum()
    }
}

/// An objective whose evaluation is a sampling process.
///
/// `open` starts a fresh sampling computation at `x`; the returned stream is
/// then driven by the optimizer. The `seed` makes streams reproducible and
/// independent across points.
pub trait StochasticObjective: Sync {
    /// The sampling-stream type produced at each point. The `'static` bound
    /// (with `Send` from [`SampleStream`]) lets backends move streams onto
    /// worker threads.
    type Stream: SampleStream + 'static;

    /// Dimensionality of the parameter space.
    fn dim(&self) -> usize;

    /// Begin sampling at point `x`.
    fn open(&self, x: &[f64], seed: u64) -> Self::Stream;

    /// The underlying noise-free value, when known analytically.
    ///
    /// Optimizers must never call this; it exists so experiment harnesses can
    /// measure the true error `R` of a result. Substrates where the truth is
    /// unknown (e.g. molecular dynamics) return `None`.
    fn true_value(&self, _x: &[f64]) -> Option<f64> {
        None
    }

    /// Opaque identity of the worker pool this objective's streams dispatch
    /// on during `extend`, if any. Plain in-process objectives return `None`
    /// (the default). Pool-dispatching adapters (e.g. `mw-framework`'s
    /// `MwObjective`) return a token matching
    /// [`SamplingBackend::pool_token`](crate::backend::SamplingBackend::pool_token)
    /// for the same pool, so configuration validation can reject the
    /// deadlocking combination of an objective and a batch backend driving
    /// one pool.
    fn pool_token(&self) -> Option<usize> {
        None
    }
}

impl<T: StochasticObjective + ?Sized> StochasticObjective for &T {
    type Stream = T::Stream;
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn open(&self, x: &[f64], seed: u64) -> Self::Stream {
        (**self).open(x, seed)
    }
    fn true_value(&self, x: &[f64]) -> Option<f64> {
        (**self).true_value(x)
    }
    fn pool_token(&self) -> Option<usize> {
        (**self).pool_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_interval_edges() {
        let e = Estimate {
            value: 10.0,
            std_err: 2.0,
            time: 1.0,
        };
        assert_eq!(e.lo(1.0), 8.0);
        assert_eq!(e.hi(1.0), 12.0);
        assert_eq!(e.lo(2.0), 6.0);
        assert_eq!(e.hi(0.0), 10.0);
    }

    #[test]
    fn exact_estimate_has_zero_error() {
        let e = Estimate::exact(3.5);
        assert_eq!(e.value, 3.5);
        assert_eq!(e.std_err, 0.0);
        assert_eq!(e.lo(5.0), e.hi(5.0));
    }
}
