//! Deploying the simplex on the MW master–worker hierarchy (§3.1, §3.4):
//! one dispatched task per vertex evaluation, Ns client threads per task,
//! and the processor-allocation arithmetic of Table 3.3.
//!
//! ```sh
//! cargo run --release --example mw_scaleup
//! ```

use mw_framework::Allocation;
use repro_bench::scaleup::scaleup_rosenbrock;

fn main() {
    println!("MW processor allocation (Table 3.3, Ns = 1):");
    println!(
        "{:>5} {:>8} {:>8} {:>8} {:>7}",
        "d", "workers", "servers", "clients", "total"
    );
    for d in [20usize, 50, 100] {
        let a = Allocation::new(d, 1);
        println!(
            "{:>5} {:>8} {:>8} {:>8} {:>7}",
            d,
            a.workers(),
            a.servers(),
            a.clients(),
            a.total()
        );
    }

    println!("\nscale-up runs (DET over the MW hierarchy, noisy Rosenbrock):");
    println!(
        "{:>5} {:>7} {:>14} {:>14} {:>12}",
        "d", "steps", "wall total s", "s per step", "final best"
    );
    for d in [20usize, 50, 100] {
        let res = scaleup_rosenbrock(d, 1, 0.5, 1.0, 300, 1e-9, 42 + d as u64);
        println!(
            "{:>5} {:>7} {:>14.4} {:>14.6} {:>12.3e}",
            d,
            res.steps,
            res.total_wall_secs,
            res.secs_per_step,
            res.trace.last().map(|p| p.best_value).unwrap_or(f64::NAN)
        );
    }
    println!("\nThe per-step cost grows mildly with d (dispatch + O(d^2) geometry),");
    println!("matching the paper's 'minor degradation attributed to I/O' (Fig 3.18c).");
}
