//! Quickstart: minimize a noisy function with the point-to-point comparison
//! (PC) simplex.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use noisy_simplex::prelude::*;
use stoch_eval::{ConstantNoise, Noisy, Rosenbrock};

fn main() {
    // The objective: 3-d Rosenbrock observed through sampling noise with
    // inherent magnitude sigma0 = 100 — one evaluation of virtual duration
    // t has standard error 100/sqrt(t).
    let objective = Noisy::new(Rosenbrock::new(3), ConstantNoise(100.0));

    // A random initial simplex, each coordinate uniform in [-6, 3).
    let init = init::random_uniform(3, -6.0, 3.0, 42);

    // Stop when vertex values agree to 1e-6, or after 1e5 units of virtual
    // sampling time, whichever comes first (paper Eq. 2.9 + walltime).
    let term = Termination {
        tolerance: Some(1e-6),
        max_time: Some(1e5),
        max_iterations: Some(50_000),
    };

    let result = PointComparison::new().run(&objective, init, term, TimeMode::Parallel, 7);

    println!("stopped:     {:?}", result.stop);
    println!("iterations:  {}", result.iterations);
    println!("virtual time:{:>12.0}", result.elapsed);
    println!(
        "best point:  [{:.4}, {:.4}, {:.4}]   (true optimum: [1, 1, 1])",
        result.best_point[0], result.best_point[1], result.best_point[2]
    );
    println!("observed f:  {:.4}", result.best_observed);
    let true_f = stoch_eval::objective::Objective::value(&Rosenbrock::new(3), &result.best_point);
    println!("true f:      {true_f:.4}");

    // For contrast: the classic deterministic simplex on the same problem.
    let init = init::random_uniform(3, -6.0, 3.0, 42);
    let det = Det::new().run(
        &objective,
        init,
        Termination {
            tolerance: Some(1e-6),
            max_time: Some(1e5),
            max_iterations: Some(50_000),
        },
        TimeMode::Parallel,
        7,
    );
    let det_f = stoch_eval::objective::Objective::value(&Rosenbrock::new(3), &det.best_point);
    println!("\nDET on the same problem reaches true f = {det_f:.4} — noise misleads it.");
}
