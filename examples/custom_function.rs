//! Bringing your own objective: implement `StochasticObjective` (or wrap a
//! deterministic function in `Noisy`) and drive any of the algorithms —
//! including the extension baselines — on it.
//!
//! The example models a 2-d "simulation" whose noise level depends on the
//! location in parameter space (noisier far from the origin), then compares
//! the full algorithm roster.
//!
//! ```sh
//! cargo run --release --example custom_function
//! ```

use noisy_simplex::prelude::*;
use stoch_eval::functions::FnObjective;
use stoch_eval::noise::FnNoise;
use stoch_eval::objective::Objective;
use stoch_eval::sampler::Noisy;

fn main() {
    // Underlying truth: a tilted quadratic bowl with minimum at (2, -1).
    let truth = FnObjective::new(2, |x: &[f64]| {
        let (a, b) = (x[0] - 2.0, x[1] + 1.0);
        3.0 * a * a + b * b + 0.5 * a * b
    });
    // Location-dependent noise: measurements are noisier away from origin.
    let noise = FnNoise(|x: &[f64], _f: f64| 5.0 + 2.0 * (x[0].abs() + x[1].abs()));
    let objective = Noisy::new(truth, noise);
    let truth = FnObjective::new(2, |x: &[f64]| {
        let (a, b) = (x[0] - 2.0, x[1] + 1.0);
        3.0 * a * a + b * b + 0.5 * a * b
    });

    let term = Termination {
        tolerance: Some(1e-5),
        max_time: Some(5e4),
        max_iterations: Some(20_000),
    };

    println!("method        iters   true f at result   distance to (2,-1)");
    let simplexes: [(&str, SimplexMethod); 5] = [
        ("DET", SimplexMethod::Det(Det::new())),
        ("MN", SimplexMethod::Mn(MaxNoise::with_k(2.0))),
        ("PC", SimplexMethod::Pc(PointComparison::new())),
        ("PC+MN", SimplexMethod::PcMn(PcMn::new())),
        (
            "Anderson",
            SimplexMethod::Anderson(AndersonNm::with_k1(1024.0)),
        ),
    ];
    for (name, m) in simplexes {
        let init = init::random_uniform(2, -8.0, 8.0, 3);
        let res = m.run(&objective, init, term, TimeMode::Parallel, 5);
        report(name, &truth, &res.best_point, res.iterations);
    }

    // Extension baselines on the same substrate.
    let spsa = Spsa::default().run(&objective, vec![-5.0, 5.0], term, TimeMode::Parallel, 5);
    report("SPSA", &truth, &spsa.best_point, spsa.iterations);
    let sa =
        SimulatedAnnealing::default().run(&objective, vec![-5.0, 5.0], term, TimeMode::Parallel, 5);
    report("SA", &truth, &sa.best_point, sa.iterations);
    let rs = RandomSearch::new(-8.0, 8.0).run(&objective, term, TimeMode::Parallel, 5);
    report("random", &truth, &rs.best_point, rs.iterations);
}

fn report<O: Objective>(name: &str, truth: &O, p: &[f64], iters: u64) {
    let d = ((p[0] - 2.0).powi(2) + (p[1] + 1.0).powi(2)).sqrt();
    println!(
        "{name:<12} {iters:>6}   {:>16.5}   {d:>18.4}",
        truth.value(p)
    );
}
