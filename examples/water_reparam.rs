//! The paper's application (§3.5): automated reparameterization of the
//! TIP4P water model against six experimental targets.
//!
//! Runs the fast surrogate objective with MN, PC, and PC+MN from the
//! paper's poor starting vertices, then validates the winning parameters by
//! running the *real* molecular-dynamics engine once at those parameters.
//!
//! ```sh
//! cargo run --release --example water_reparam
//! ```

use noisy_simplex::prelude::*;
use water_md::cost::WaterObjective;
use water_md::reference::{Experiment, INITIAL_VERTICES};
use water_md::simulate::{run_md, MdConfig};
use water_md::surrogate::SurrogateWater;
use water_md::WaterModel;

fn main() {
    let objective = WaterObjective::new(SurrogateWater);
    let init: Vec<Vec<f64>> = INITIAL_VERTICES[..4].iter().map(|v| v.to_vec()).collect();
    let term = Termination {
        tolerance: Some(1e-4),
        max_time: Some(2e5),
        max_iterations: Some(10_000),
    };

    println!("initial vertices (eps, sigma, qH):");
    for v in &init {
        println!(
            "  ({:.4}, {:.3}, {:.3})  cost {:.3}",
            v[0],
            v[1],
            v[2],
            objective.true_cost(&[v[0], v[1], v[2]])
        );
    }
    println!(
        "published TIP4P cost: {:.4}\n",
        objective.true_cost(&[0.1550, 3.1540, 0.5200])
    );

    let mut best: Option<(String, Vec<f64>, f64)> = None;
    let methods: [(&str, SimplexMethod); 3] = [
        ("MN   ", SimplexMethod::Mn(MaxNoise::with_k(2.0))),
        ("PC   ", SimplexMethod::Pc(PointComparison::new())),
        ("PC+MN", SimplexMethod::PcMn(PcMn::new())),
    ];
    for (name, method) in methods {
        let res = method.run(&objective, init.clone(), term, TimeMode::Parallel, 11);
        let cost = objective.true_cost(&[res.best_point[0], res.best_point[1], res.best_point[2]]);
        println!(
            "{name}: {} steps -> eps={:.4} sigma={:.4} qH={:.4}  cost {:.4}",
            res.iterations, res.best_point[0], res.best_point[1], res.best_point[2], cost
        );
        if best.as_ref().map(|(_, _, c)| cost < *c).unwrap_or(true) {
            best = Some((name.trim().to_string(), res.best_point.clone(), cost));
        }
    }

    let (name, p, cost) = best.unwrap();
    println!("\nbest model ({name}, surrogate cost {cost:.4}); validating with real MD...");
    let model = WaterModel::with_params(p[0], p[1], p[2]);
    let cfg = MdConfig {
        n_side: 3,
        equil_steps: 400,
        prod_steps: 1_500,
        sample_every: 10,
        ..MdConfig::default()
    };
    let props = run_md(model, &cfg);
    println!(
        "  MD (27 molecules, {} fs production):",
        props.production_fs
    );
    println!(
        "  U = {:.1} kJ/mol (exp {:.1})   P = {:.0} atm (exp {:.0})   D = {:.2e} cm2/s (exp 2.27e-5)",
        props.energy_kj_mol.mean,
        Experiment::U,
        props.pressure_atm.mean,
        Experiment::P,
        props.diffusion_cm2_s,
    );
    let (rs, gs) = &props.g_oo;
    let peak = rs
        .iter()
        .zip(gs)
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "  first gOO peak at {:.2} A, height {:.2} (experiment: 2.73 A, ~2.8)",
        peak.0, peak.1
    );

    // Dump a short viewable trajectory of the optimized model.
    use water_md::integrate::step;
    use water_md::kernel::ForceEngine;
    use water_md::system::System;
    use water_md::trajectory::XyzWriter;
    let mut sys = System::lattice(model, 3, 0.997, 298.0, 7);
    let rc = sys.box_len / 2.0;
    let mut engine = ForceEngine::from_env();
    let mut f = engine.compute(&sys, rc);
    if let Ok(file) = std::fs::File::create("results/optimized_water.xyz") {
        let mut xyz = XyzWriter::new(std::io::BufWriter::new(file));
        for frame in 0..20 {
            for _ in 0..25 {
                f = step(&mut sys, &f, 1.0, rc, &mut engine);
            }
            let _ = xyz.write_frame(&sys, (frame + 1) as f64 * 25.0);
        }
        let n = xyz.frames();
        let _ = xyz.finish();
        println!("  wrote {n}-frame trajectory to results/optimized_water.xyz");
    }
}
