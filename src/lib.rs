//! Umbrella crate for the `noisy-simplex` reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests (`tests/`) and
//! the runnable examples (`examples/`). The actual functionality lives in:
//!
//! * [`noisy_simplex`] — the paper's optimization algorithms (DET, MN, PC,
//!   PC+MN, Anderson, extension baselines).
//! * [`stoch_eval`] — the noisy-evaluation substrate (virtual time, sampling
//!   streams, test functions, statistics).
//! * [`mw_framework`] — the master–worker parallel execution framework.
//! * [`water_md`] — the TIP4P water molecular-dynamics substrate and its fast
//!   surrogate, used for the parameterization application.

pub use mw_framework;
pub use noisy_simplex;
pub use stoch_eval;
pub use water_md;
