//! The backend determinism contract (DESIGN.md §8): a sampling backend
//! changes *where* stream extensions execute, never the results. Every
//! simplex-family method must produce a bit-identical [`RunResult`] under
//! the serial and threaded backends for the same seed.

use noisy_simplex::prelude::*;
use proptest::prelude::*;
use stoch_eval::functions::{Rosenbrock, Sphere};
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::StochasticObjective;
use stoch_eval::sampler::Noisy;

fn methods_with(backend: BackendChoice) -> Vec<SimplexMethod> {
    let mut det = Det::new();
    det.cfg.backend = backend;
    let mut mn = MaxNoise::with_k(2.0);
    mn.cfg.backend = backend;
    let mut pc = PointComparison::new();
    pc.cfg.backend = backend;
    let mut pcmn = PcMn::new();
    pcmn.cfg.backend = backend;
    vec![
        SimplexMethod::Det(det),
        SimplexMethod::Mn(mn),
        SimplexMethod::Pc(pc),
        SimplexMethod::PcMn(pcmn),
    ]
}

fn term() -> Termination {
    Termination {
        tolerance: Some(1e-6),
        max_time: Some(500.0),
        max_iterations: Some(200),
    }
}

/// Bitwise comparison of two runs, trace included. `f64::to_bits` so that
/// even NaN-vs-NaN or `-0.0`-vs-`0.0` divergence would be caught.
fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    let bits = |v: f64| v.to_bits();
    assert_eq!(a.best_point, b.best_point, "{label}: best_point");
    assert_eq!(
        bits(a.best_observed),
        bits(b.best_observed),
        "{label}: best_observed"
    );
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(bits(a.elapsed), bits(b.elapsed), "{label}: elapsed");
    assert_eq!(
        bits(a.total_sampling),
        bits(b.total_sampling),
        "{label}: total_sampling"
    );
    assert_eq!(a.stop, b.stop, "{label}: stop reason");
    let (pa, pb) = (a.trace.points(), b.trace.points());
    assert_eq!(pa.len(), pb.len(), "{label}: trace length");
    for (i, (x, y)) in pa.iter().zip(pb).enumerate() {
        assert_eq!(bits(x.time), bits(y.time), "{label}: trace[{i}].time");
        assert_eq!(x.iteration, y.iteration, "{label}: trace[{i}].iteration");
        assert_eq!(
            bits(x.best_observed),
            bits(y.best_observed),
            "{label}: trace[{i}].best_observed"
        );
        assert_eq!(x.step, y.step, "{label}: trace[{i}].step");
    }
}

fn check_all_methods<F: StochasticObjective>(objective: &F, d: usize, seed: u64) {
    let init = init::random_uniform(d, -3.0, 3.0, seed);
    let serial = methods_with(BackendChoice::Serial);
    let threaded = methods_with(BackendChoice::Threaded { workers: 2 });
    for (s, t) in serial.iter().zip(&threaded) {
        let ra = s.run(objective, init.clone(), term(), TimeMode::Parallel, seed);
        let rb = t.run(objective, init.clone(), term(), TimeMode::Parallel, seed);
        assert_identical(&s.name(), &ra, &rb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn backends_agree_on_rosenbrock(seed in 1u64..10_000) {
        let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(2.0));
        check_all_methods(&obj, 3, seed);
    }

    #[test]
    fn backends_agree_on_quadratic(seed in 1u64..10_000) {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        check_all_methods(&obj, 2, seed);
    }
}
