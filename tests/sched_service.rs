//! Multi-run scheduler service determinism (DESIGN.md §13): a run admitted
//! to the shared-fleet [`Scheduler`] must produce a result bit-identical to
//! the same spec executed alone in a closed loop — under random priorities,
//! fair-share weights, time-slice quanta, forced preemption, fault plans on
//! a subset of runs, and on both serial and threaded inner backends.

use mw_framework::{FaultPlan, RetryPolicy, ThreadedBackend};
use noisy_simplex::prelude::*;
use noisy_simplex::session::{Driver, RunSession};
use nsx_sched::{RunSpec, SchedConfig, Scheduler};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use stoch_eval::backend::{SamplingBackend, SerialBackend};
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;

fn serial_cfg() -> SimplexConfig {
    SimplexConfig {
        backend: BackendChoice::Serial,
        ..SimplexConfig::default()
    }
}

/// A customized config: worker faults plus a retry tweak, so the scheduler
/// must give the run a dedicated backend instead of the shared fleet.
fn chaos_cfg() -> SimplexConfig {
    SimplexConfig {
        backend: BackendChoice::Threaded { workers: 2 },
        faults: Some(FaultPlan::none().kill(0, 5)),
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        ..SimplexConfig::default()
    }
}

fn term(iters: u64) -> Termination {
    Termination {
        tolerance: None,
        max_time: None,
        max_iterations: Some(iters),
    }
}

fn init(seed: u64) -> Vec<Vec<f64>> {
    noisy_simplex::init::random_uniform(2, -4.0, 4.0, seed)
}

fn driver_for(i: usize) -> Driver {
    match i % 4 {
        0 => Driver::Det,
        1 => Driver::Mn(Default::default()),
        2 => Driver::Pc(Default::default()),
        _ => Driver::PcMn(Default::default(), Default::default()),
    }
}

fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.best_point, b.best_point, "{label}: best_point");
    assert_eq!(
        a.best_observed.to_bits(),
        b.best_observed.to_bits(),
        "{label}: best_observed"
    );
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits(), "{label}: elapsed");
    assert_eq!(
        a.total_sampling.to_bits(),
        b.total_sampling.to_bits(),
        "{label}: total_sampling"
    );
    assert_eq!(a.stop, b.stop, "{label}: stop reason");
    assert_eq!(
        a.trace.points().len(),
        b.trace.points().len(),
        "{label}: trace length"
    );
}

/// Run `n` interleaved runs through a scheduler over `inner` and demand
/// each one matches its solo closed-loop execution bitwise.
#[allow(clippy::too_many_arguments)]
fn check_interleaving(
    n: usize,
    width: usize,
    quantum: u64,
    priorities: &[i32],
    weights: &[f64],
    chaos_mask: &[bool],
    inner: Arc<dyn SamplingBackend<<Noisy<Rosenbrock, ConstantNoise> as stoch_eval::objective::StochasticObjective>::Stream>>,
    label: &str,
) {
    // Pinned Gaussian: these tests prove preemption/interleaving
    // determinism, which is independent of the noise shape; under an
    // NSX_NOISE chaos distribution the heavy-tailed wait loops only make
    // them slow. Hostile-noise coverage lives in tests/hostile_noise.rs.
    let obj = Noisy::gaussian(Rosenbrock::new(2), ConstantNoise(8.0));
    let iters = 25;

    let solos: Vec<RunResult> = (0..n)
        .map(|i| {
            let cfg = if chaos_mask[i] {
                chaos_cfg()
            } else {
                serial_cfg()
            };
            RunSession::new(
                &obj,
                init(300 + i as u64),
                cfg,
                term(iters),
                TimeMode::Parallel,
                i as u64,
                driver_for(i),
            )
            .run_to_completion()
        })
        .collect();

    let mut sched = Scheduler::new(SchedConfig { width, quantum }, inner);
    let ids: Vec<u64> = (0..n)
        .map(|i| {
            let cfg = if chaos_mask[i] {
                chaos_cfg()
            } else {
                serial_cfg()
            };
            sched
                .admit(
                    RunSpec::new(
                        &obj,
                        init(300 + i as u64),
                        cfg,
                        term(iters),
                        TimeMode::Parallel,
                        i as u64,
                        driver_for(i),
                    )
                    .priority(priorities[i])
                    .weight(weights[i]),
                )
                .expect("admission failed")
        })
        .collect();
    sched.run();

    assert_eq!(
        sched
            .service_registry()
            .counter("sched.runs_completed")
            .get(),
        n as u64,
        "{label}: all runs must complete"
    );
    for (i, solo) in solos.iter().enumerate() {
        let got = sched.result(ids[i]).expect("missing result");
        assert_identical(&format!("{label}: run {i}"), solo, got);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random interleavings over a **serial** inner backend: any number of
    /// runs, priorities, weights, slice quanta, and narrow widths (which
    /// force checkpoint preemption) must leave every result untouched.
    #[test]
    fn interleaved_runs_bit_identical_serial_inner(
        n in 2usize..=5,
        width in 1usize..=2,
        quantum in 1u64..=3,
        prio_raw in collection::vec(-2i32..=2, 5..=5),
        weight_raw in collection::vec(0.5f64..4.0, 5..=5),
        chaos_pick in 0usize..5,
    ) {
        let chaos_mask: Vec<bool> = (0..n).map(|i| i == chaos_pick).collect();
        check_interleaving(
            n,
            width,
            quantum,
            &prio_raw[..n],
            &weight_raw[..n],
            &chaos_mask,
            Arc::new(SerialBackend),
            "serial-inner",
        );
    }

    /// Same property with a **threaded** inner backend under the fleet:
    /// merged batches dispatched over a real worker pool must still be
    /// bitwise indistinguishable from solo serial loops.
    #[test]
    fn interleaved_runs_bit_identical_threaded_inner(
        n in 2usize..=4,
        quantum in 1u64..=2,
        prio_raw in collection::vec(-2i32..=2, 4..=4),
        weight_raw in collection::vec(0.5f64..4.0, 4..=4),
    ) {
        let chaos_mask = vec![false; n];
        check_interleaving(
            n,
            1, // width 1 over >=2 runs: preemption every tick
            quantum,
            &prio_raw[..n],
            &weight_raw[..n],
            &chaos_mask,
            Arc::new(ThreadedBackend::new(2)),
            "threaded-inner",
        );
    }
}

/// A unique checkpoint path per call (tests run concurrently in one
/// process, and cargo may run several test binaries at once).
fn tmp_ckpt(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
    std::env::temp_dir().join(format!("nsx_sched_{tag}_{}_{n}.bin", std::process::id()))
}

fn cleanup_run_files(base: &Path, run_ids: &[u64]) {
    for id in run_ids {
        for suffix in [
            format!(".run{id}"),
            format!(".run{id}.1"),
            format!(".run{id}.tmp"),
        ] {
            let mut p = base.as_os_str().to_os_string();
            p.push(&suffix);
            let _ = std::fs::remove_file(PathBuf::from(p));
        }
    }
}

/// Concurrent runs sharing one configured checkpoint path must not clobber
/// each other: the scheduler rewrites the path per run id, so both durable
/// checkpoints (and their `.1` retention copies) coexist on disk.
#[test]
fn concurrent_runs_get_isolated_checkpoint_files() {
    let obj = Noisy::gaussian(Rosenbrock::new(2), ConstantNoise(4.0));
    let base = tmp_ckpt("shared");
    let ck_cfg = |path: &Path| SimplexConfig {
        backend: BackendChoice::Serial,
        checkpoint: Some(CheckpointConfig {
            path: path.to_path_buf(),
            every: 1,
            retain: true,
        }),
        ..SimplexConfig::default()
    };

    let mut sched = Scheduler::new(
        SchedConfig {
            width: 1,
            quantum: 2,
        },
        Arc::new(SerialBackend),
    );
    let ids: Vec<u64> = (0..2u64)
        .map(|s| {
            sched
                .admit(RunSpec::new(
                    &obj,
                    init(s),
                    ck_cfg(&base),
                    term(12),
                    TimeMode::Parallel,
                    s,
                    Driver::Det,
                ))
                .expect("admission failed")
        })
        .collect();
    sched.run();

    // Both runs finished, and each left its own checkpoint family behind —
    // the shared base path itself was never written.
    for id in &ids {
        let mut p = base.as_os_str().to_os_string();
        p.push(format!(".run{id}"));
        let per_run = PathBuf::from(p);
        assert!(
            per_run.exists(),
            "expected per-run checkpoint at {}",
            per_run.display()
        );
    }
    assert!(
        !base.exists(),
        "shared base path must not be written when runs are isolated"
    );

    // The per-run checkpoints resume independently and bit-identically:
    // each matches an uninterrupted solo run of the same spec.
    for (i, id) in ids.iter().enumerate() {
        let solo = RunSession::new(
            &obj,
            init(*id),
            serial_cfg(),
            term(12),
            TimeMode::Parallel,
            *id,
            Driver::Det,
        )
        .run_to_completion();
        let got = sched.result(*id).expect("missing result");
        assert_identical(&format!("checkpointed run {i}"), &solo, got);
    }
    cleanup_run_files(&base, &ids);
}
