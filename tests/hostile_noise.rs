//! Hostile-noise robustness (DESIGN.md §14): the determinism and gating
//! contracts must survive non-Gaussian sampling distributions.
//!
//! Three families of checks:
//!
//! * **Backend invariance** — under Student-t, ε-contaminated, and drifting
//!   noise, serial and threaded runs of every simplex method stay
//!   f64-bit-identical (draws are a pure function of stream state, never of
//!   dispatch order or batching).
//! * **Gate contracts** — MN and all seven PC conditions keep making
//!   progress (and never panic or livelock) when their Gaussian calibration
//!   assumptions are violated.
//! * **Checkpoint round trips** — a preempted-and-resumed run equals a solo
//!   run bit for bit under every hostile distribution, including across the
//!   breakdown policy's mid-run estimator switch.

use noisy_simplex::prelude::*;
use obs::MetricsRegistry;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use stoch_eval::functions::{Rosenbrock, Sphere};
use stoch_eval::noise::ConstantNoise;
use stoch_eval::sampler::Noisy;
use stoch_eval::stats::EstimatorChoice;
use stoch_eval::{DriftSpec, NoiseDistribution};

/// Every non-Gaussian distribution under test, with a label for messages.
fn hostile_distributions() -> Vec<(&'static str, NoiseDistribution)> {
    vec![
        ("student_t3", NoiseDistribution::student_t(3.0)),
        (
            "contaminated",
            NoiseDistribution::gaussian().with_contamination(0.05, 20.0),
        ),
        (
            "t3_contaminated",
            NoiseDistribution::student_t(3.0).with_contamination(0.05, 20.0),
        ),
        (
            "drifting",
            NoiseDistribution::drifting(DriftSpec::default_spec()),
        ),
    ]
}

fn methods() -> Vec<SimplexMethod> {
    vec![
        SimplexMethod::Det(Det::new()),
        SimplexMethod::Mn(MaxNoise::with_k(2.0)),
        SimplexMethod::Pc(PointComparison::new()),
        SimplexMethod::PcMn(PcMn::new()),
    ]
}

fn with_cfg(m: &SimplexMethod, f: impl FnOnce(&mut SimplexConfig)) -> SimplexMethod {
    let mut m = m.clone();
    match &mut m {
        SimplexMethod::Det(x) => f(&mut x.cfg),
        SimplexMethod::Mn(x) => f(&mut x.cfg),
        SimplexMethod::Pc(x) => f(&mut x.cfg),
        SimplexMethod::PcMn(x) => f(&mut x.cfg),
        SimplexMethod::Anderson(x) => f(&mut x.cfg),
    }
    m
}

fn term() -> Termination {
    Termination {
        tolerance: Some(1e-6),
        max_time: Some(300.0),
        max_iterations: Some(120),
    }
}

/// Bitwise comparison of two runs, trace and notes included.
fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    let bits = |v: f64| v.to_bits();
    assert_eq!(a.best_point, b.best_point, "{label}: best_point");
    assert_eq!(
        bits(a.best_observed),
        bits(b.best_observed),
        "{label}: best_observed"
    );
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(bits(a.elapsed), bits(b.elapsed), "{label}: elapsed");
    assert_eq!(
        bits(a.total_sampling),
        bits(b.total_sampling),
        "{label}: total_sampling"
    );
    assert_eq!(a.stop, b.stop, "{label}: stop reason");
    assert_eq!(a.notes, b.notes, "{label}: notes");
    let (pa, pb) = (a.trace.points(), b.trace.points());
    assert_eq!(pa.len(), pb.len(), "{label}: trace length");
    for (i, (x, y)) in pa.iter().zip(pb).enumerate() {
        assert_eq!(bits(x.time), bits(y.time), "{label}: trace[{i}].time");
        assert_eq!(
            bits(x.best_observed),
            bits(y.best_observed),
            "{label}: trace[{i}].best_observed"
        );
        assert_eq!(x.step, y.step, "{label}: trace[{i}].step");
    }
}

fn tmp_ckpt(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
    std::env::temp_dir().join(format!("nsx_hostile_{tag}_{}_{n}.bin", std::process::id()))
}

fn cleanup(path: &Path) {
    for suffix in ["", ".1", ".tmp"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Serial vs threaded bit-identity for every method under every hostile
    /// distribution, with both the Welford and the median-of-means
    /// estimator. This is the cross-backend form of the per-sample RNG
    /// purity guarantee: thread scheduling reorders *where* extensions run,
    /// and nothing about the results may move.
    #[test]
    fn hostile_runs_are_backend_invariant(seed in 1u64..10_000) {
        for (dname, dist) in hostile_distributions() {
            for est in [EstimatorChoice::Welford, EstimatorChoice::ROBUST_DEFAULT] {
                let obj = Noisy::new(Sphere::new(2), ConstantNoise(5.0))
                    .with_distribution(dist)
                    .with_estimator(est);
                let init = init::random_uniform(2, -3.0, 3.0, seed);
                for m in &methods() {
                    let serial = with_cfg(m, |c| c.backend = BackendChoice::Serial)
                        .run(&obj, init.clone(), term(), TimeMode::Parallel, seed);
                    let threaded =
                        with_cfg(m, |c| c.backend = BackendChoice::Threaded { workers: 3 })
                            .run(&obj, init.clone(), term(), TimeMode::Parallel, seed);
                    let label = format!("{} under {dname}/{}", m.name(), est.label());
                    assert_identical(&label, &serial, &threaded);
                }
            }
        }
    }

    /// Checkpoint-preempted vs solo bit-identity under every hostile
    /// distribution: the hostile stream state (per-sample index,
    /// distribution, estimator, moments, block means) round-trips through
    /// the engine snapshot.
    #[test]
    fn hostile_resume_is_bit_identical(seed in 1u64..10_000, cut in 3u64..=5) {
        for (dname, dist) in hostile_distributions() {
            let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(10.0))
                .with_distribution(dist)
                .with_estimator(EstimatorChoice::ROBUST_DEFAULT);
            let init = init::random_uniform(2, -3.0, 3.0, seed);
            let m = SimplexMethod::Pc(PointComparison::new());

            let golden = with_cfg(&m, |c| c.checkpoint = None)
                .run(&obj, init.clone(), term(), TimeMode::Parallel, seed);
            if golden.iterations <= cut {
                continue;
            }

            let path = tmp_ckpt(dname);
            let ckpt_m = with_cfg(&m, |c| {
                c.checkpoint = Some(CheckpointConfig {
                    path: path.clone(),
                    every: 1,
                    retain: true,
                });
            });
            let trunc = Termination { max_iterations: Some(cut), ..term() };
            ckpt_m.run(&obj, init, trunc, TimeMode::Parallel, seed);
            let resumed = ckpt_m
                .resume(&obj, &path, Some(term()))
                .unwrap_or_else(|e| panic!("{dname}: resume failed: {e}"));
            cleanup(&path);
            assert_identical(&format!("PC resume under {dname}"), &golden, &resumed);
        }
    }
}

/// MN's gate and all seven PC conditions must keep working — progress, no
/// panic, no livelock — under Student-t(3) and contaminated noise, on both
/// backends. The gates' *statistics* are miscalibrated there (that is the
/// tentpole's premise); the *contract* that each decision terminates and
/// the run completes must hold regardless.
#[test]
fn mn_and_pc_conditions_survive_hostile_noise() {
    let hostile = [
        ("student_t3", NoiseDistribution::student_t(3.0)),
        (
            "contaminated",
            NoiseDistribution::gaussian().with_contamination(0.05, 20.0),
        ),
    ];
    for (dname, dist) in hostile {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(50.0)).with_distribution(dist);
        for backend in [
            BackendChoice::Serial,
            BackendChoice::Threaded { workers: 2 },
        ] {
            let init = init::random_uniform(2, -3.0, 3.0, 77);
            let mn = with_cfg(&SimplexMethod::Mn(MaxNoise::with_k(2.0)), |c| {
                c.backend = backend
            })
            .run(&obj, init, term(), TimeMode::Parallel, 7);
            assert!(mn.iterations > 0, "MN made no progress under {dname}");
            assert!(mn.best_observed.is_finite(), "MN non-finite under {dname}");

            for cond in 1..=7usize {
                let pc = PointComparison::with_params(PcParams {
                    k: 1.0,
                    conditions: PcConditions::only(&[cond]),
                });
                let mut m = SimplexMethod::Pc(pc);
                m = with_cfg(&m, |c| c.backend = backend);
                let init = init::random_uniform(2, -3.0, 3.0, 100 + cond as u64);
                let res = m.run(&obj, init, term(), TimeMode::Parallel, cond as u64);
                assert!(
                    res.iterations > 0,
                    "PC c{cond} made no progress under {dname}"
                );
                assert!(
                    res.best_observed.is_finite(),
                    "PC c{cond} non-finite under {dname}"
                );
            }
        }
    }
}

/// The breakdown auto-switch: under contaminated noise with
/// `BreakdownAction::SwitchRobust`, the run flags the noise, switches to
/// the robust estimator exactly once, records [`RunNote::NoiseSuspect`] and
/// the `eval.tail.*` counters — and remains backend-invariant through the
/// switch.
#[test]
fn breakdown_policy_switches_and_stays_deterministic() {
    let dist = NoiseDistribution::student_t(3.0).with_contamination(0.10, 25.0);
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(20.0)).with_distribution(dist);
    let init = init::random_uniform(2, -3.0, 3.0, 11);
    let auto = BreakdownPolicy {
        action: BreakdownAction::SwitchRobust,
        ..BreakdownPolicy::default()
    };
    let run = |backend: BackendChoice| {
        let m = with_cfg(&SimplexMethod::Pc(PointComparison::new()), |c| {
            c.backend = backend;
            c.breakdown = auto;
        });
        let reg = MetricsRegistry::new();
        let res = m.run_with_metrics(
            &obj,
            init.clone(),
            term(),
            TimeMode::Parallel,
            11,
            Some(&reg),
        );
        (res, reg)
    };

    let (serial, _) = run(BackendChoice::Serial);
    let (threaded, reg) = run(BackendChoice::Threaded { workers: 3 });
    assert_identical("PC breakdown auto-switch", &serial, &threaded);

    assert!(
        serial.notes.contains(&RunNote::NoiseSuspect),
        "10% contamination at 25σ must trip the tail diagnostic, notes: {:?}",
        serial.notes
    );
    let metrics = serial.metrics.as_ref().expect("metrics attached");
    assert!(metrics.tail_flag_rounds > 0, "no flagged rounds recorded");
    assert_eq!(metrics.tail_switches, 1, "switch must fire exactly once");
    assert_eq!(
        reg.counter("eval.tail.switches").get(),
        1,
        "registry counter must mirror the summary"
    );
}

/// Off policy: the same hostile run records nothing.
#[test]
fn breakdown_off_records_nothing() {
    let dist = NoiseDistribution::student_t(3.0).with_contamination(0.10, 25.0);
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(20.0)).with_distribution(dist);
    let init = init::random_uniform(2, -3.0, 3.0, 11);
    let m = with_cfg(&SimplexMethod::Pc(PointComparison::new()), |c| {
        c.breakdown = BreakdownPolicy {
            action: BreakdownAction::Off,
            ..BreakdownPolicy::default()
        };
    });
    let reg = MetricsRegistry::new();
    let res = m.run_with_metrics(&obj, init, term(), TimeMode::Parallel, 11, Some(&reg));
    assert!(!res.notes.contains(&RunNote::NoiseSuspect));
    assert_eq!(res.metrics.expect("metrics").tail_flag_rounds, 0);
}
