//! Chaos determinism (DESIGN.md §9): injected worker faults — kills, delays,
//! dropped results — must never change a [`RunResult`]. As long as the retry
//! budget and at least one live worker remain, every simplex-family method
//! stays bit-identical to its fault-free serial run; and when the respawn
//! budget is exhausted the run degrades to serial execution (recorded as
//! [`RunNote::DegradedToSerial`]) rather than erroring.

use noisy_simplex::prelude::*;
use proptest::prelude::*;
use std::time::Duration;
use stoch_eval::functions::{Rosenbrock, Sphere};
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::StochasticObjective;
use stoch_eval::sampler::Noisy;

/// A generous retry policy so every injected loss is re-dispatched.
fn chaos_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        timeout: None,
        backoff: Duration::ZERO,
    }
}

fn methods_with(backend: BackendChoice, faults: Option<FaultPlan>) -> Vec<SimplexMethod> {
    let mut det = Det::new();
    let mut mn = MaxNoise::with_k(2.0);
    let mut pc = PointComparison::new();
    let mut pcmn = PcMn::new();
    for cfg in [&mut det.cfg, &mut mn.cfg, &mut pc.cfg, &mut pcmn.cfg] {
        cfg.backend = backend;
        cfg.faults = faults.clone();
        if faults.is_some() {
            cfg.retry = chaos_retry();
        }
    }
    vec![
        SimplexMethod::Det(det),
        SimplexMethod::Mn(mn),
        SimplexMethod::Pc(pc),
        SimplexMethod::PcMn(pcmn),
    ]
}

fn term() -> Termination {
    Termination {
        tolerance: Some(1e-6),
        max_time: Some(500.0),
        max_iterations: Some(120),
    }
}

/// Bitwise comparison of two runs, trace included (same contract as
/// `tests/backend_determinism.rs`).
fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    let bits = |v: f64| v.to_bits();
    assert_eq!(a.best_point, b.best_point, "{label}: best_point");
    assert_eq!(
        bits(a.best_observed),
        bits(b.best_observed),
        "{label}: best_observed"
    );
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(bits(a.elapsed), bits(b.elapsed), "{label}: elapsed");
    assert_eq!(
        bits(a.total_sampling),
        bits(b.total_sampling),
        "{label}: total_sampling"
    );
    assert_eq!(a.stop, b.stop, "{label}: stop reason");
    let (pa, pb) = (a.trace.points(), b.trace.points());
    assert_eq!(pa.len(), pb.len(), "{label}: trace length");
    for (i, (x, y)) in pa.iter().zip(pb).enumerate() {
        assert_eq!(bits(x.time), bits(y.time), "{label}: trace[{i}].time");
        assert_eq!(x.iteration, y.iteration, "{label}: trace[{i}].iteration");
        assert_eq!(
            bits(x.best_observed),
            bits(y.best_observed),
            "{label}: trace[{i}].best_observed"
        );
        assert_eq!(x.step, y.step, "{label}: trace[{i}].step");
    }
}

/// Fault plans that always leave at least one worker (worker `n-1`) alive
/// and un-delayed, across a pool of `workers` threads.
fn survivable_plans(workers: usize) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("kill-first-early", FaultPlan::none().kill(0, 1)),
        ("kill-first-immediately", FaultPlan::none().kill(0, 0)),
        (
            "kill-two",
            FaultPlan::none().kill(0, 0).kill(workers.min(2) - 1, 2),
        ),
        ("delay-first", FaultPlan::none().delay(0, 0, 5)),
        (
            "drop-then-kill",
            FaultPlan::none().drop_result(0, 1).kill(0, 3),
        ),
        (
            "mixed",
            FaultPlan::none().kill(0, 2).delay(1 % workers, 1, 3),
        ),
    ]
}

fn check_chaos_matches_serial<F: StochasticObjective>(objective: &F, d: usize, seed: u64) {
    let workers = 3;
    let init = init::random_uniform(d, -3.0, 3.0, seed);
    let serial = methods_with(BackendChoice::Serial, None);
    for (plan_name, plan) in survivable_plans(workers) {
        let faulted = methods_with(BackendChoice::Threaded { workers }, Some(plan));
        for (s, t) in serial.iter().zip(&faulted) {
            let ra = s.run(objective, init.clone(), term(), TimeMode::Parallel, seed);
            let rb = t.run(objective, init.clone(), term(), TimeMode::Parallel, seed);
            let label = format!("{} under {plan_name}", s.name());
            assert_identical(&label, &ra, &rb);
            // NoiseSuspect is a property of the sampled noise (it fires
            // under an NSX_NOISE chaos distribution), not of the fault plan,
            // so it is the one note a clean serial run may carry.
            assert!(
                ra.notes.iter().all(|n| *n == RunNote::NoiseSuspect),
                "{label}: serial run must carry no fault notes, got {:?}",
                ra.notes
            );
            assert!(
                !rb.notes.contains(&RunNote::DegradedToSerial)
                    && !rb.notes.contains(&RunNote::TransportDegraded),
                "{label}: a survivable fault plan must not degrade the run"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn faulted_runs_match_serial_on_rosenbrock(seed in 1u64..10_000) {
        let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(2.0));
        check_chaos_matches_serial(&obj, 3, seed);
    }

    #[test]
    fn faulted_runs_match_serial_on_quadratic(seed in 1u64..10_000) {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        check_chaos_matches_serial(&obj, 2, seed);
    }
}

/// Killing every worker with no respawn budget must not error: the engine
/// degrades to inline serial execution, records the fact in
/// [`RunResult::notes`], and still matches the serial run bit for bit.
#[test]
fn exhausted_budget_degrades_to_serial_with_note() {
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
    let seed = 7;
    let init = init::random_uniform(2, -3.0, 3.0, seed);

    let mut serial = Det::new();
    serial.cfg.backend = BackendChoice::Serial;
    let ra = serial.run(&obj, init.clone(), term(), TimeMode::Parallel, seed);

    let mut doomed = Det::new();
    doomed.cfg.backend = BackendChoice::Threaded { workers: 2 };
    doomed.cfg.faults = Some(FaultPlan::none().kill(0, 0).kill(1, 0));
    doomed.cfg.respawn_budget = Some(0);
    doomed.cfg.retry = chaos_retry();
    let rb = doomed.run(&obj, init.clone(), term(), TimeMode::Parallel, seed);

    assert_identical("det degraded-to-serial", &ra, &rb);
    // Which note records the degradation depends on what actually executed
    // the batches: under `NSX_TRANSPORT=process` the process transport
    // supersedes the threaded backend choice and reports the wire-specific
    // note instead (DESIGN.md §12).
    let expected = if matches!(TransportChoice::from_env(), TransportChoice::Process) {
        RunNote::TransportDegraded
    } else {
        RunNote::DegradedToSerial
    };
    assert!(
        rb.notes.contains(&expected),
        "degraded run must record {expected:?}, got {:?}",
        rb.notes
    );
}

/// The per-attempt timeout contract (PR 3 `RetryPolicy`) must survive the
/// event-driven batch wait: a worker slower than the budget trips
/// `mw.retry.timeouts`, the job is re-issued (and ultimately completes
/// inline), and the results stay bit-identical to serial.
#[test]
fn per_attempt_timeouts_still_fire_and_count() {
    use mw_framework::backend::ThreadedBackend;
    use mw_framework::pool::default_respawn_budget;
    use obs::MetricsRegistry;
    use stoch_eval::backend::{SamplingBackend, StreamJob};
    use stoch_eval::objective::SampleStream;
    use stoch_eval::sampler::GaussianStream;

    let make_jobs = || -> Vec<StreamJob<GaussianStream>> {
        (0..3)
            .map(|i| StreamJob {
                slot: i,
                dt: 1.0 + i as f64,
                stream: GaussianStream::new(i as f64, 2.0, 400 + i as u64),
            })
            .collect()
    };
    let mut reference: Vec<GaussianStream> = make_jobs().into_iter().map(|j| j.stream).collect();
    for (i, r) in reference.iter_mut().enumerate() {
        r.extend(1.0 + i as f64);
    }

    // The sole worker sleeps 60ms per job against a 10ms budget: every
    // attempt must time out, be counted, and fall back inline.
    let reg = MetricsRegistry::new();
    let backend = ThreadedBackend::with_options(
        1,
        FaultPlan::none().delay(0, 0, 60),
        RetryPolicy {
            max_attempts: 2,
            timeout: Some(Duration::from_millis(10)),
            backoff: Duration::ZERO,
        },
        default_respawn_budget(1),
        Some(&reg),
    );
    let done = backend.extend_batch(make_jobs());
    assert!(
        reg.counter("mw.retry.timeouts").get() >= 1,
        "slow worker must trip the per-attempt timeout counter"
    );
    for (j, r) in done.iter().zip(&reference) {
        let (a, b) = (j.stream.estimate(), r.estimate());
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.std_err.to_bits(), b.std_err.to_bits());
        assert_eq!(a.time.to_bits(), b.time.to_bits());
    }
}
