//! Durable checkpoint/resume (DESIGN.md §11): a run truncated at iteration
//! `k`, checkpointed, dropped, and resumed must be bit-identical to one that
//! never stopped — best point, values, counters, trace, and accounting —
//! for every simplex-family method, on both sampling backends, under any
//! checkpoint cadence, and composed with worker fault injection.

use noisy_simplex::engine::Engine;
use noisy_simplex::prelude::*;
use obs::MetricsRegistry;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use stoch_eval::codec::{CodecError, Reader, Writer};
use stoch_eval::functions::{Rosenbrock, Sphere};
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::{Estimate, Objective, SampleStream, StochasticObjective};
use stoch_eval::sampler::Noisy;

/// A unique checkpoint path per call (tests run concurrently in one
/// process, and cargo may run several test binaries at once).
fn tmp_ckpt(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
    std::env::temp_dir().join(format!("nsx_ckpt_{tag}_{}_{n}.bin", std::process::id()))
}

/// Remove a checkpoint plus its retention (`.1`) and staging (`.tmp`) files.
fn cleanup(path: &Path) {
    for suffix in ["", ".1", ".tmp"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
}

fn all_methods() -> Vec<SimplexMethod> {
    vec![
        SimplexMethod::Det(Det::new()),
        SimplexMethod::Mn(MaxNoise::with_k(2.0)),
        SimplexMethod::Pc(PointComparison::new()),
        SimplexMethod::PcMn(PcMn::new()),
        SimplexMethod::Anderson(AndersonNm::with_k1(1024.0)),
    ]
}

/// Clone a method with its shared [`SimplexConfig`] adjusted.
fn with_cfg(m: &SimplexMethod, f: impl FnOnce(&mut SimplexConfig)) -> SimplexMethod {
    let mut m = m.clone();
    match &mut m {
        SimplexMethod::Det(x) => f(&mut x.cfg),
        SimplexMethod::Mn(x) => f(&mut x.cfg),
        SimplexMethod::Pc(x) => f(&mut x.cfg),
        SimplexMethod::PcMn(x) => f(&mut x.cfg),
        SimplexMethod::Anderson(x) => f(&mut x.cfg),
    }
    m
}

fn full_term() -> Termination {
    Termination {
        tolerance: Some(1e-6),
        max_time: Some(300.0),
        max_iterations: Some(100),
    }
}

/// Bitwise comparison of two runs: result fields, trace, accounting, notes.
fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    let bits = |v: f64| v.to_bits();
    assert_eq!(a.best_point, b.best_point, "{label}: best_point");
    assert_eq!(
        bits(a.best_observed),
        bits(b.best_observed),
        "{label}: best_observed"
    );
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(bits(a.elapsed), bits(b.elapsed), "{label}: elapsed");
    assert_eq!(
        bits(a.total_sampling),
        bits(b.total_sampling),
        "{label}: total_sampling"
    );
    assert_eq!(a.stop, b.stop, "{label}: stop reason");
    assert_eq!(a.notes, b.notes, "{label}: notes");
    assert_eq!(a.metrics, b.metrics, "{label}: metrics summary");
    let (pa, pb) = (a.trace.points(), b.trace.points());
    assert_eq!(pa.len(), pb.len(), "{label}: trace length");
    for (i, (x, y)) in pa.iter().zip(pb).enumerate() {
        assert_eq!(bits(x.time), bits(y.time), "{label}: trace[{i}].time");
        assert_eq!(x.iteration, y.iteration, "{label}: trace[{i}].iteration");
        assert_eq!(
            bits(x.best_observed),
            bits(y.best_observed),
            "{label}: trace[{i}].best_observed"
        );
        assert_eq!(x.step, y.step, "{label}: trace[{i}].step");
    }
}

/// The core round trip: golden uninterrupted run vs. (run to `cut`
/// iterations with checkpointing → drop everything → resume from the file
/// with the golden termination) — must be bit-identical.
fn check_roundtrip<F: StochasticObjective>(
    method: &SimplexMethod,
    objective: &F,
    d: usize,
    seed: u64,
    every: u64,
    cut: u64,
    backend: BackendChoice,
) {
    let init = init::random_uniform(d, -3.0, 3.0, seed);
    let label = format!(
        "{} every={every} cut={cut} {}",
        method.name(),
        backend.label()
    );

    let golden_m = with_cfg(method, |c| {
        c.backend = backend;
        c.checkpoint = None;
    });
    let golden_reg = MetricsRegistry::new();
    let golden = golden_m.run_with_metrics(
        objective,
        init.clone(),
        full_term(),
        TimeMode::Parallel,
        seed,
        Some(&golden_reg),
    );
    if golden.iterations <= cut {
        return; // nothing to truncate — the run finished before the cut
    }

    let path = tmp_ckpt("rt");
    let ckpt_m = with_cfg(method, |c| {
        c.backend = backend;
        c.checkpoint = Some(CheckpointConfig {
            path: path.clone(),
            every,
            retain: true,
        });
    });
    let trunc_term = Termination {
        max_iterations: Some(cut),
        ..full_term()
    };
    let trunc_reg = MetricsRegistry::new();
    let truncated = ckpt_m.run_with_metrics(
        objective,
        init,
        trunc_term,
        TimeMode::Parallel,
        seed,
        Some(&trunc_reg),
    );
    assert!(
        truncated.iterations <= cut + 1,
        "{label}: truncated run overshot the cut"
    );

    let resume_reg = MetricsRegistry::new();
    let resumed = ckpt_m
        .resume_with_metrics(objective, &path, Some(full_term()), Some(&resume_reg))
        .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
    cleanup(&path);

    assert_identical(&label, &golden, &resumed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Oracle-error streams: all five methods, both backends.
    #[test]
    fn resume_is_bit_identical_on_noisy_sphere(
        seed in 1u64..10_000,
        every in 1u64..=3,
        cut in 3u64..=6,
    ) {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        for m in &all_methods() {
            for backend in [BackendChoice::Serial, BackendChoice::Threaded { workers: 2 }] {
                check_roundtrip(m, &obj, 2, seed, every, cut, backend);
            }
        }
    }

    /// Empirical-error streams (batch statistics persisted too) on a second
    /// test function.
    #[test]
    fn resume_is_bit_identical_on_empirical_rosenbrock(
        seed in 1u64..10_000,
        every in 1u64..=3,
        cut in 3u64..=6,
    ) {
        let obj = Noisy::empirical(Rosenbrock::new(3), ConstantNoise(2.0), 0.25);
        for m in &all_methods() {
            for backend in [BackendChoice::Serial, BackendChoice::Threaded { workers: 2 }] {
                check_roundtrip(m, &obj, 3, seed, every, cut, backend);
            }
        }
    }

    /// Checkpoint cadence composed with worker fault injection: a threaded
    /// pool that loses a worker mid-run must still checkpoint and resume
    /// bit-identically (the retry layer re-issues lost work from master-side
    /// stream copies, so the fault never reaches the persisted state).
    #[test]
    fn resume_composes_with_fault_injection(
        seed in 1u64..10_000,
        every in 1u64..=2,
        cut in 3u64..=5,
        kill_after in 1u64..=3,
    ) {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let methods = [
            SimplexMethod::Mn(MaxNoise::with_k(2.0)),
            SimplexMethod::Pc(PointComparison::new()),
        ];
        for m in &methods {
            let faulty = with_cfg(m, |c| {
                c.faults = Some(FaultPlan::none().kill(0, kill_after));
            });
            check_roundtrip(
                &faulty,
                &obj,
                2,
                seed,
                every,
                cut,
                BackendChoice::Threaded { workers: 2 },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// extend_until + checkpoint interaction
// ---------------------------------------------------------------------------

/// A stream whose standard error never shrinks: `extend_until` can never
/// reach its target and must give up with [`StopReason::Stalled`].
#[derive(Debug, Clone)]
struct FlatStream {
    value: f64,
    t: f64,
}

impl SampleStream for FlatStream {
    fn extend(&mut self, dt: f64) {
        self.t += dt;
    }
    fn estimate(&self) -> Estimate {
        Estimate {
            value: self.value,
            std_err: 1.0,
            time: self.t,
        }
    }
    fn save_state(&self, w: &mut Writer) -> Result<(), CodecError> {
        w.put_f64(self.value);
        w.put_f64(self.t);
        Ok(())
    }
    fn load_state(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(FlatStream {
            value: r.take_f64()?,
            t: r.take_f64()?,
        })
    }
}

struct FlatObjective;

impl StochasticObjective for FlatObjective {
    type Stream = FlatStream;
    fn dim(&self) -> usize {
        2
    }
    fn open(&self, x: &[f64], _seed: u64) -> FlatStream {
        FlatStream {
            value: x.iter().map(|v| v * v).sum(),
            t: 0.0,
        }
    }
}

fn simplex_2d() -> Vec<Vec<f64>> {
    vec![vec![1.0, 1.0], vec![2.0, 1.0], vec![1.0, 2.0]]
}

fn serial_cfg() -> SimplexConfig {
    SimplexConfig {
        backend: BackendChoice::Serial,
        checkpoint: None,
        ..SimplexConfig::default()
    }
}

/// `extend_until` that stalls must account identically whether or not the
/// engine went through a snapshot/resume round trip first.
#[test]
fn stalled_extend_until_accounts_identically_across_resume() {
    let obj = FlatObjective;
    let term = Termination {
        tolerance: None,
        max_time: None,
        max_iterations: None,
    };

    let mut golden = Engine::new(
        &obj,
        simplex_2d(),
        serial_cfg(),
        term,
        TimeMode::Parallel,
        7,
    );
    let (est_g, stop_g) = golden.extend_until(0, 0.5);
    assert_eq!(stop_g, Some(StopReason::Stalled));
    let res_g = golden.finish(StopReason::Stalled);

    let twin = Engine::new(
        &obj,
        simplex_2d(),
        serial_cfg(),
        term,
        TimeMode::Parallel,
        7,
    );
    let payload = twin.snapshot().expect("snapshot");
    drop(twin);
    let mut resumed =
        Engine::resume(&obj, serial_cfg(), &payload, None).expect("resume from bytes");
    let (est_r, stop_r) = resumed.extend_until(0, 0.5);
    assert_eq!(stop_r, Some(StopReason::Stalled));
    let res_r = resumed.finish(StopReason::Stalled);

    assert_eq!(est_g.value.to_bits(), est_r.value.to_bits());
    assert_eq!(est_g.time.to_bits(), est_r.time.to_bits());
    assert_eq!(res_g.elapsed.to_bits(), res_r.elapsed.to_bits());
    assert_eq!(
        res_g.total_sampling.to_bits(),
        res_r.total_sampling.to_bits()
    );
    assert_eq!(res_g.stop, StopReason::Stalled);
    assert_eq!(res_r.stop, StopReason::Stalled);
}

/// A wall-time budget exhausted before a checkpoint must stay exhausted
/// after resume: the restored clock continues from the persisted elapsed
/// time instead of granting the budget a second time.
#[test]
fn resume_does_not_double_count_wall_time_budget() {
    let obj = FlatObjective;
    let term = Termination {
        tolerance: None,
        max_time: Some(50.0),
        max_iterations: None,
    };

    let mut eng = Engine::new(
        &obj,
        simplex_2d(),
        serial_cfg(),
        term,
        TimeMode::Parallel,
        3,
    );
    let (_, stop) = eng.extend_until(0, 0.5);
    assert_eq!(stop, Some(StopReason::WallTime));
    let payload = eng.snapshot().expect("snapshot");
    let res_before = eng.finish(StopReason::WallTime);

    let mut resumed =
        Engine::resume(&obj, serial_cfg(), &payload, None).expect("resume from bytes");
    // The budget was already spent: the resumed engine must refuse further
    // work immediately, not run another 50 units of virtual time.
    let (_, stop2) = resumed.extend_until(0, 0.5);
    assert_eq!(stop2, Some(StopReason::WallTime));
    let res_after = resumed.finish(StopReason::WallTime);
    assert_eq!(
        res_before.elapsed.to_bits(),
        res_after.elapsed.to_bits(),
        "resume granted the wall-time budget twice"
    );
}

// ---------------------------------------------------------------------------
// Degenerate-simplex guard
// ---------------------------------------------------------------------------

/// A constant objective: every comparison ties, so classic Nelder–Mead
/// collapses the simplex forever. The degenerate guard must stop the spin.
struct ConstObjective;

impl Objective for ConstObjective {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, _x: &[f64]) -> f64 {
        0.0
    }
}

#[test]
fn collapsing_simplex_stops_as_degenerate() {
    let obj = Noisy::new(ConstObjective, ConstantNoise(0.0));
    let mut det = Det::new();
    det.cfg.backend = BackendChoice::Serial;
    det.cfg.checkpoint = None;
    // Tolerance disabled: a constant objective satisfies the spread
    // criterion trivially, which would mask the geometric collapse.
    let term = Termination {
        tolerance: None,
        max_time: Some(1e6),
        max_iterations: Some(10_000),
    };
    let init = init::random_uniform(2, -3.0, 3.0, 11);
    let res = det.run(&obj, init, term, TimeMode::Parallel, 11);
    assert_eq!(res.stop, StopReason::Degenerate);
    // Each collapse halves the diameter, so machine precision is reached in
    // well under 200 iterations — not after burning the 10k budget.
    assert!(
        res.iterations < 200,
        "degenerate guard fired late: {} iterations",
        res.iterations
    );
}

#[test]
fn restart_continues_past_degenerate_stop() {
    let obj = Noisy::new(ConstObjective, ConstantNoise(0.0));
    let mut det = Det::new();
    det.cfg.backend = BackendChoice::Serial;
    det.cfg.checkpoint = None;
    let single_term = Termination {
        tolerance: None,
        max_time: Some(1e6),
        max_iterations: Some(10_000),
    };
    let init = init::random_uniform(2, -3.0, 3.0, 11);
    let single = det.run(&obj, init, single_term, TimeMode::Parallel, 11);
    assert_eq!(single.stop, StopReason::Degenerate);

    // A multistart wrapper treats Degenerate like any other local stop and
    // keeps drawing fresh simplices until the budget runs out.
    let restarted = RestartedSimplex::new(SimplexMethod::Det(det), -3.0, 3.0);
    let term = Termination {
        tolerance: None,
        max_time: Some(2_000.0),
        max_iterations: None,
    };
    let res = restarted.run(&obj, term, TimeMode::Parallel, 11);
    assert!(
        res.iterations > single.iterations,
        "no restart happened after the degenerate stop: {} vs {}",
        res.iterations,
        single.iterations
    );
}

// ---------------------------------------------------------------------------
// Non-finite sample policies
// ---------------------------------------------------------------------------

/// Finite on the right half-plane, NaN on the left — models a simulation
/// that blows up in part of parameter space.
struct HalfNan;

impl Objective for HalfNan {
    fn dim(&self) -> usize {
        2
    }
    fn value(&self, x: &[f64]) -> f64 {
        if x[0] < 0.0 {
            f64::NAN
        } else {
            x.iter().map(|v| v * v).sum()
        }
    }
}

fn half_nan_init() -> Vec<Vec<f64>> {
    vec![vec![-1.0, 0.5], vec![1.0, 0.5], vec![0.5, 1.0]]
}

#[test]
fn quarantine_policy_survives_nonfinite_samples() {
    let obj = Noisy::new(HalfNan, ConstantNoise(0.5));
    let mut det = Det::new();
    det.cfg.backend = BackendChoice::Serial;
    det.cfg.checkpoint = None;
    det.cfg.nonfinite = NonFinitePolicy::Quarantine;
    let term = Termination {
        tolerance: Some(1e-3),
        max_time: Some(1e4),
        max_iterations: Some(2_000),
    };
    let reg = MetricsRegistry::new();
    let res = det.run_with_metrics(
        &obj,
        half_nan_init(),
        term,
        TimeMode::Parallel,
        5,
        Some(&reg),
    );
    assert_ne!(res.stop, StopReason::NonFinite, "quarantine must not stop");
    assert!(res.iterations > 0);
    assert!(
        res.notes.contains(&RunNote::NonFiniteSample),
        "missing NonFiniteSample note: {:?}",
        res.notes
    );
    assert!(reg.counter("eval.nonfinite").get() > 0);
    let metrics = res.metrics.expect("metrics attached");
    assert!(metrics.nonfinite > 0);
    // The poisoned vertex lost every comparison and was replaced: the final
    // simplex lives in the finite half-plane.
    assert!(res.best_observed.is_finite());
}

#[test]
fn fail_fast_policy_stops_on_nonfinite_samples() {
    let obj = Noisy::new(HalfNan, ConstantNoise(0.5));
    let mut det = Det::new();
    det.cfg.backend = BackendChoice::Serial;
    det.cfg.checkpoint = None;
    det.cfg.nonfinite = NonFinitePolicy::FailFast;
    let term = Termination {
        tolerance: Some(1e-3),
        max_time: Some(1e4),
        max_iterations: Some(2_000),
    };
    let res = det.run(&obj, half_nan_init(), term, TimeMode::Parallel, 5);
    assert_eq!(res.stop, StopReason::NonFinite);
    assert!(res.notes.contains(&RunNote::NonFiniteSample));
}

// ---------------------------------------------------------------------------
// Resume validation
// ---------------------------------------------------------------------------

/// Resuming against an objective of the wrong dimensionality must be a
/// typed error, not a panic or a silently corrupted run.
#[test]
fn resume_rejects_dimension_mismatch() {
    let path = tmp_ckpt("dim");
    let obj2 = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
    let mut det = Det::new();
    det.cfg.backend = BackendChoice::Serial;
    det.cfg.checkpoint = Some(CheckpointConfig {
        path: path.clone(),
        every: 1,
        retain: true,
    });
    let term = Termination {
        tolerance: None,
        max_time: Some(1e4),
        max_iterations: Some(5),
    };
    let init = init::random_uniform(2, -3.0, 3.0, 9);
    let res = det.run(&obj2, init, term, TimeMode::Parallel, 9);
    assert_eq!(res.stop, StopReason::MaxIterations);

    let obj3 = Noisy::new(Sphere::new(3), ConstantNoise(1.0));
    let err = det
        .resume(&obj3, &path, None)
        .expect_err("dimension mismatch must fail");
    cleanup(&path);
    assert!(
        matches!(err, CheckpointError::Mismatch(_)),
        "wrong error kind: {err}"
    );
}

/// `inspect` reports a checkpoint's position without deserializing the run.
#[test]
fn inspect_reports_checkpoint_progress() {
    let path = tmp_ckpt("inspect");
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
    let mut mn = MaxNoise::with_k(2.0);
    mn.cfg.backend = BackendChoice::Serial;
    mn.cfg.checkpoint = Some(CheckpointConfig {
        path: path.clone(),
        every: 2,
        retain: true,
    });
    let term = Termination {
        tolerance: None,
        max_time: Some(1e4),
        max_iterations: Some(7),
    };
    let init = init::random_uniform(2, -3.0, 3.0, 21);
    let _ = mn.run(&obj, init, term, TimeMode::Parallel, 21);

    let info = noisy_simplex::checkpoint::inspect(&path).expect("inspect");
    cleanup(&path);
    assert!(info.iterations >= 2 && info.iterations <= 7, "{info:?}");
    assert!(info.elapsed > 0.0);
}
