//! Property-based tests (proptest) for the core data structures and
//! invariants across the workspace.

use noisy_simplex::geometry::{
    centroid_excluding, collapse_towards, contract, diameter, expand, order, reflect,
};
use proptest::prelude::*;
use stoch_eval::objective::SampleStream;
use stoch_eval::sampler::GaussianStream;
use stoch_eval::stats::{quantile, Histogram, Welford};

fn small_points(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, d..=d), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reflection_is_an_involution(pts in small_points(3, 4)) {
        // Reflecting the reflection around the same centroid returns the
        // original worst point.
        let cent = centroid_excluding(&pts, 0);
        let r = reflect(&cent, &pts[0], 1.0);
        let rr = reflect(&cent, &r, 1.0);
        for (a, b) in rr.iter().zip(&pts[0]) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn contraction_point_lies_between_worst_and_centroid(pts in small_points(3, 4), beta in 0.01f64..0.99) {
        let cent = centroid_excluding(&pts, 0);
        let c = contract(&cent, &pts[0], beta);
        for i in 0..3 {
            let lo = pts[0][i].min(cent[i]) - 1e-9;
            let hi = pts[0][i].max(cent[i]) + 1e-9;
            prop_assert!(c[i] >= lo && c[i] <= hi);
        }
    }

    #[test]
    fn expansion_is_beyond_the_reflection(pts in small_points(2, 3)) {
        // exp − ref is parallel to ref − cent with positive coefficient
        // (gamma − 1), so the expansion extends the reflection direction.
        let cent = centroid_excluding(&pts, 0);
        let r = reflect(&cent, &pts[0], 1.0);
        let e = expand(&cent, &r, 2.0);
        for i in 0..2 {
            let dr = r[i] - cent[i];
            let de = e[i] - r[i];
            prop_assert!((de - dr).abs() < 1e-9);
        }
    }

    #[test]
    fn collapse_never_grows_the_simplex(pts in small_points(3, 4), keep in 0usize..4) {
        let before = diameter(&pts);
        let mut pts2 = pts.clone();
        collapse_towards(&mut pts2, keep, 0.5);
        prop_assert!(diameter(&pts2) <= before + 1e-9);
        // The kept vertex does not move.
        prop_assert_eq!(&pts2[keep], &pts[keep]);
    }

    #[test]
    fn ordering_picks_extremes(values in proptest::collection::vec(-1e6f64..1e6, 3..10)) {
        let o = order(&values);
        for &v in &values {
            prop_assert!(values[o.min] <= v);
            prop_assert!(values[o.max] >= v);
        }
        prop_assert!(values[o.smax] <= values[o.max]);
        prop_assert!(o.smax != o.max || values.len() == 2);
    }

    #[test]
    fn gaussian_stream_error_is_monotone_decreasing(
        f in -1e3f64..1e3,
        sigma0 in 0.1f64..1e3,
        seed in 0u64..1000,
        steps in 1usize..20,
    ) {
        let mut s = GaussianStream::new(f, sigma0, seed);
        let mut last = f64::INFINITY;
        for _ in 0..steps {
            s.extend(1.0);
            let e = s.estimate();
            prop_assert!(e.std_err <= last);
            prop_assert!(e.std_err > 0.0);
            last = e.std_err;
        }
    }

    #[test]
    fn gaussian_stream_estimate_is_within_8_sigma(
        f in -1e3f64..1e3,
        sigma0 in 0.1f64..100.0,
        seed in 0u64..1000,
    ) {
        let mut s = GaussianStream::new(f, sigma0, seed);
        s.extend(100.0);
        let e = s.estimate();
        prop_assert!((e.value - f).abs() < 8.0 * e.std_err,
            "estimate {} truth {f} stderr {}", e.value, e.std_err);
    }

    #[test]
    fn welford_mean_within_range(data in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut w = Welford::new();
        for &x in &data { w.push(x); }
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(w.mean() >= lo - 1e-6 && w.mean() <= hi + 1e-6);
        prop_assert_eq!(w.count(), data.len() as u64);
    }

    #[test]
    fn histogram_conserves_counts(
        data in proptest::collection::vec(-20.0f64..20.0, 0..200),
        bins in 1usize..50,
    ) {
        let mut h = Histogram::new(-10.0, 10.0, bins);
        h.extend_from(&data);
        prop_assert_eq!(h.total(), data.len() as u64);
        let in_range: u64 = h.counts().iter().sum();
        let expected = data.iter().filter(|&&x| (-10.0..10.0).contains(&x)).count() as u64;
        prop_assert_eq!(in_range, expected);
    }

    #[test]
    fn quantiles_are_monotone(data in proptest::collection::vec(-1e3f64..1e3, 2..60)) {
        let q25 = quantile(&data, 0.25);
        let q50 = quantile(&data, 0.5);
        let q75 = quantile(&data, 0.75);
        prop_assert!(q25 <= q50 && q50 <= q75);
    }

    #[test]
    fn min_image_is_within_half_box(dx in -1e3f64..1e3, l in 1.0f64..100.0) {
        let m = water_md::system::min_image(dx, l);
        prop_assert!(m.abs() <= l / 2.0 + 1e-9);
        // Same lattice class: difference is an integer multiple of l.
        let k = (dx - m) / l;
        prop_assert!((k - k.round()).abs() < 1e-9);
    }

    #[test]
    fn msite_coefficient_invariance(
        eps in 0.05f64..0.3,
        sigma in 2.5f64..3.6,
        q in 0.3f64..0.7,
    ) {
        // The virtual-site coefficient depends only on the fixed geometry,
        // not on the fitted parameters.
        let m = water_md::WaterModel::with_params(eps, sigma, q);
        prop_assert!((m.msite_coeff() - water_md::TIP4P.msite_coeff()).abs() < 1e-12);
        // And the charges balance: 2 qH + qM = 0.
        prop_assert!((2.0 * m.q_h + m.q_m()).abs() < 1e-12);
    }
}

mod compare_props {
    use noisy_simplex::compare::{confident_less, Decision};
    use proptest::prelude::*;
    use stoch_eval::objective::Estimate;

    fn est(v: f64, s: f64) -> Estimate {
        Estimate {
            value: v,
            std_err: s,
            time: 1.0,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn decisions_are_antisymmetric(
            a in -1e3f64..1e3, sa in 0.0f64..10.0,
            b in -1e3f64..1e3, sb in 0.0f64..10.0,
            k in 0.1f64..3.0,
        ) {
            // a<b decided Yes  <=>  b<a decided No (and vice versa);
            // Unknown is symmetric.
            let ab = confident_less(est(a, sa), est(b, sb), k, true);
            let ba = confident_less(est(b, sb), est(a, sa), k, true);
            match ab {
                Decision::Yes => prop_assert_eq!(ba, Decision::No),
                Decision::Unknown => prop_assert_eq!(ba, Decision::Unknown),
                Decision::No => {
                    // Ties (a == b with zero error) are No both ways.
                    prop_assert!(ba == Decision::Yes || (a == b && sa == 0.0 && sb == 0.0));
                }
            }
        }

        #[test]
        fn larger_k_never_creates_decisions(
            a in -1e3f64..1e3, sa in 0.01f64..10.0,
            b in -1e3f64..1e3, sb in 0.01f64..10.0,
        ) {
            // If a comparison is undecidable at k, it stays undecidable at
            // a larger k (wider intervals).
            let d1 = confident_less(est(a, sa), est(b, sb), 1.0, true);
            let d2 = confident_less(est(a, sa), est(b, sb), 2.0, true);
            if d1 == Decision::Unknown {
                prop_assert_eq!(d2, Decision::Unknown);
            }
        }

        #[test]
        fn shrinking_error_eventually_decides(
            a in -1e3f64..1e3,
            b in -1e3f64..1e3,
        ) {
            prop_assume!((a - b).abs() > 1e-6);
            // With small enough error bars the decision matches the truth.
            let d = confident_less(est(a, 1e-9), est(b, 1e-9), 1.0, true);
            if a < b {
                prop_assert_eq!(d, Decision::Yes);
            } else {
                prop_assert_eq!(d, Decision::No);
            }
        }
    }
}

mod water_force_props {
    use proptest::prelude::*;
    use water_md::forces::compute_forces;
    use water_md::model::TIP4P;
    use water_md::system::{Molecule, System};
    use water_md::vec3::Vec3;

    fn random_system(centers: Vec<(f64, f64, f64)>, box_len: f64) -> System {
        let (o, h1, h2) = TIP4P.reference_sites();
        let molecules = centers
            .into_iter()
            .map(|(x, y, z)| {
                let c = Vec3::new(x, y, z);
                Molecule {
                    r: [o + c, h1 + c, h2 + c],
                    v: [Vec3::zero(); 3],
                }
            })
            .collect();
        System {
            model: TIP4P,
            molecules,
            box_len,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn newtons_third_law_holds_for_random_configurations(
            centers in proptest::collection::vec((0.0f64..18.0, 0.0f64..18.0, 0.0f64..18.0), 2..6),
        ) {
            let sys = random_system(centers, 18.0);
            let f = compute_forces(&sys, 8.0);
            let mut total = Vec3::zero();
            for mol in &f.f {
                for fv in mol {
                    total += *fv;
                }
            }
            prop_assert!(total.norm() < 1e-7, "net force {}", total.norm());
            prop_assert!(f.potential.is_finite());
            prop_assert!(f.virial.is_finite());
        }

        #[test]
        fn energy_is_invariant_under_global_translation(
            centers in proptest::collection::vec((2.0f64..16.0, 2.0f64..16.0, 2.0f64..16.0), 2..4),
            shift in (-30.0f64..30.0, -30.0f64..30.0, -30.0f64..30.0),
        ) {
            let sys = random_system(centers.clone(), 18.0);
            let mut shifted = sys.clone();
            let s = Vec3::new(shift.0, shift.1, shift.2);
            for mol in &mut shifted.molecules {
                for r in &mut mol.r {
                    *r += s;
                }
            }
            let e0 = compute_forces(&sys, 8.0).potential;
            let e1 = compute_forces(&shifted, 8.0).potential;
            prop_assert!((e0 - e1).abs() < 1e-7 * e0.abs().max(1.0),
                "translation changed energy: {e0} vs {e1}");
        }
    }
}

#[test]
fn simplex_run_is_deterministic_under_fixed_seed() {
    use noisy_simplex::prelude::*;
    use stoch_eval::functions::Rosenbrock;
    use stoch_eval::noise::ConstantNoise;
    use stoch_eval::sampler::Noisy;
    let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(100.0));
    let run = || {
        let init = init::random_uniform(3, -6.0, 3.0, 12);
        PointComparison::new().run(
            &obj,
            init,
            Termination {
                tolerance: None,
                max_time: Some(1e4),
                max_iterations: None,
            },
            TimeMode::Parallel,
            3,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_point, b.best_point);
    assert_eq!(a.iterations, b.iterations);
}
