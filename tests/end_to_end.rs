//! Cross-crate integration tests: the full optimization pipeline from
//! noisy substrate through each algorithm to measured results.

use noisy_simplex::prelude::*;
use stoch_eval::functions::{Powell, Rosenbrock, Sphere};
use stoch_eval::noise::{ConstantNoise, ZeroNoise};
use stoch_eval::objective::Objective;
use stoch_eval::sampler::Noisy;
use stoch_eval::stats::PairedComparison;

fn term(max_time: f64) -> Termination {
    Termination {
        tolerance: Some(1e-6),
        max_time: Some(max_time),
        max_iterations: Some(50_000),
    }
}

#[test]
fn all_five_methods_solve_the_noise_free_sphere() {
    let sphere = Sphere::new(3);
    let obj = Noisy::new(sphere, ZeroNoise);
    let methods = [
        SimplexMethod::Det(Det::new()),
        SimplexMethod::Mn(MaxNoise::with_k(2.0)),
        SimplexMethod::Pc(PointComparison::new()),
        SimplexMethod::PcMn(PcMn::new()),
        SimplexMethod::Anderson(AndersonNm::with_k1(1024.0)),
    ];
    for (i, m) in methods.iter().enumerate() {
        let init = init::random_uniform(3, -4.0, 4.0, 50 + i as u64);
        let res = m.run(
            &obj,
            init,
            Termination::tolerance(1e-12),
            TimeMode::Parallel,
            i as u64,
        );
        let f = sphere.value(&res.best_point);
        assert!(f < 1e-6, "{} reached only f = {f}", m.name());
    }
}

#[test]
fn stochastic_methods_beat_det_on_noisy_rosenbrock() {
    // The paper's core claim (Fig 3.5a shape): over paired replicates, MN's
    // final true minima are at least as good as DET's on (geometric)
    // average, and strictly better in a nontrivial fraction.
    let rosen = Rosenbrock::new(4);
    let obj = Noisy::new(rosen, ConstantNoise(100.0));
    let n = 10;
    let run = |method: &SimplexMethod| -> Vec<f64> {
        (0..n)
            .map(|i| {
                let init = init::random_uniform(4, -5.0, 5.0, 900 + i);
                let res = m_run(method, &obj, init, i);
                rosen.value(&res.best_point)
            })
            .collect()
    };
    let det = run(&SimplexMethod::Det(Det::new()));
    let mn = run(&SimplexMethod::Mn(MaxNoise::with_k(2.0)));
    let cmp = PairedComparison::new(&mn, &det, 1e-12, 0.25);
    assert!(
        cmp.frac_a_wins > cmp.frac_b_wins,
        "MN should win more often: {:?} vs {:?}",
        cmp.frac_a_wins,
        cmp.frac_b_wins
    );
    let mean_ratio: f64 = cmp.log_ratios.iter().sum::<f64>() / n as f64;
    assert!(mean_ratio < 0.0, "mean log ratio {mean_ratio}");
}

fn m_run<F: stoch_eval::objective::StochasticObjective>(
    m: &SimplexMethod,
    obj: &F,
    init: Vec<Vec<f64>>,
    seed: u64,
) -> RunResult {
    m.run(obj, init, term(5e4), TimeMode::Parallel, seed)
}

#[test]
fn pc_ties_or_beats_mn_in_most_replicates() {
    // Fig 3.5b shape.
    let rosen = Rosenbrock::new(4);
    let obj = Noisy::new(rosen, ConstantNoise(1000.0));
    let n = 10;
    let run = |method: &SimplexMethod| -> Vec<f64> {
        (0..n)
            .map(|i| {
                let init = init::random_uniform(4, -5.0, 5.0, 700 + i);
                let res = m_run(method, &obj, init, i);
                rosen.value(&res.best_point)
            })
            .collect()
    };
    let mn = run(&SimplexMethod::Mn(MaxNoise::with_k(2.0)));
    let pc = run(&SimplexMethod::Pc(PointComparison::new()));
    let cmp = PairedComparison::new(&pc, &mn, 1e-12, 0.25);
    assert!(
        cmp.frac_a_wins + cmp.frac_tie >= 0.5,
        "PC should tie-or-beat MN in most replicates (got {:.0}%)",
        100.0 * (cmp.frac_a_wins + cmp.frac_tie)
    );
}

#[test]
fn pcmn_uses_fewer_steps_than_pc_on_powell() {
    let obj = Noisy::new(Powell, ConstantNoise(1000.0));
    let mut pc_total = 0;
    let mut pcmn_total = 0;
    for i in 0..4u64 {
        let init = init::random_uniform(4, -5.0, 5.0, 300 + i);
        pc_total += PointComparison::new()
            .run(&obj, init.clone(), term(5e4), TimeMode::Parallel, i)
            .iterations;
        pcmn_total += PcMn::new()
            .run(&obj, init, term(5e4), TimeMode::Parallel, i)
            .iterations;
    }
    // The paper's large step reduction (178 vs 900) is reported on
    // Rosenbrock (covered by the unit tests); on Powell the two are close,
    // so only guard against PC+MN becoming step-hungry.
    assert!(
        pcmn_total as f64 <= pc_total as f64 * 1.5,
        "PC+MN {pcmn_total} steps vs PC {pc_total}"
    );
}

#[test]
fn serial_time_accounting_exceeds_parallel() {
    // Pinned Gaussian: serial and parallel runs take different decision
    // paths, so the elapsed-time comparison is only meaningful when both
    // runs' wait loops are calibrated (Gaussian), not under NSX_NOISE chaos.
    let obj = Noisy::gaussian(Rosenbrock::new(3), ConstantNoise(10.0));
    let init = init::random_uniform(3, -6.0, 3.0, 5);
    let capped = Termination {
        tolerance: None,
        max_time: None,
        max_iterations: Some(30),
    };
    let par = MaxNoise::with_k(2.0).run(&obj, init.clone(), capped, TimeMode::Parallel, 1);
    let ser = MaxNoise::with_k(2.0).run(&obj, init, capped, TimeMode::Serial, 1);
    assert!(
        ser.elapsed > par.elapsed,
        "serial {} should exceed parallel {}",
        ser.elapsed,
        par.elapsed
    );
    // In parallel mode total CPU sampling exceeds elapsed wall time.
    assert!(par.total_sampling > par.elapsed);
}

#[test]
fn traces_are_consistent_with_results() {
    let obj = Noisy::new(Rosenbrock::new(3), ConstantNoise(100.0));
    let init = init::random_uniform(3, -6.0, 3.0, 6);
    let res = PointComparison::new().run(&obj, init, term(2e4), TimeMode::Parallel, 2);
    assert_eq!(res.trace.len() as u64, res.iterations);
    if let Some(last) = res.trace.points().last() {
        assert!(last.time <= res.elapsed + 1e-9);
        assert_eq!(last.iteration, res.iterations);
    }
    // Step-kind counts partition the iterations.
    let total = res.trace.count(StepKind::Reflect)
        + res.trace.count(StepKind::Expand)
        + res.trace.count(StepKind::Contract)
        + res.trace.count(StepKind::Collapse);
    assert_eq!(total as u64, res.iterations);
}

#[test]
fn anderson_small_k1_is_not_more_accurate_than_large() {
    let rosen = Rosenbrock::new(3);
    let obj = Noisy::new(rosen, ConstantNoise(100.0));
    let mut small_log = 0.0;
    let mut large_log = 0.0;
    for i in 0..5u64 {
        let init = init::random_uniform(3, -6.0, 3.0, 400 + i);
        let s = AndersonNm::with_k1(1.0).run(&obj, init.clone(), term(5e4), TimeMode::Parallel, i);
        let l =
            AndersonNm::with_k1(2f64.powi(20)).run(&obj, init, term(5e4), TimeMode::Parallel, i);
        small_log += rosen.value(&s.best_point).max(1e-12).log10();
        large_log += rosen.value(&l.best_point).max(1e-12).log10();
    }
    assert!(
        small_log >= large_log - 1.0,
        "small {small_log} vs large {large_log}"
    );
}

#[test]
fn extension_baselines_run_on_the_same_substrate() {
    let sphere = Sphere::new(3);
    let obj = Noisy::new(sphere, ConstantNoise(1.0));
    let capped = Termination {
        tolerance: None,
        max_time: None,
        max_iterations: Some(1_000),
    };
    let spsa = Spsa::default().run(&obj, vec![3.0; 3], capped, TimeMode::Parallel, 1);
    let sa = SimulatedAnnealing::default().run(&obj, vec![3.0; 3], capped, TimeMode::Parallel, 1);
    let rs = RandomSearch::new(-5.0, 5.0).run(&obj, capped, TimeMode::Parallel, 1);
    for (name, r) in [("spsa", &spsa), ("sa", &sa), ("random", &rs)] {
        assert!(
            sphere.value(&r.best_point) < 27.0,
            "{name} did not improve at all"
        );
    }
}
