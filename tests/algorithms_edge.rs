//! Edge-case integration tests: degenerate dimensions, pathological
//! surfaces, alternative noise models, and the extension algorithms.

use noisy_simplex::prelude::*;
use stoch_eval::functions::{McKinnon, Sphere};
use stoch_eval::functions_ext::{Ackley, Griewank, IllConditionedQuadratic, Levy, Zakharov};
use stoch_eval::noise::{ConstantNoise, RelativeNoise, ZeroNoise};
use stoch_eval::objective::Objective;
use stoch_eval::sampler::Noisy;

#[test]
fn one_dimensional_optimization_works() {
    // d = 1: the simplex is a pair of points; smax == min. Use an
    // asymmetric optimum — a symmetric one (e.g. x² from ±a) produces exact
    // value ties that legitimately trip the Eq. 2.9 spread criterion.
    use stoch_eval::functions::BoxWilsonQuadratic;
    let q = BoxWilsonQuadratic::new(vec![1.0], vec![0.37]);
    let obj = Noisy::new(BoxWilsonQuadratic::new(vec![1.0], vec![0.37]), ZeroNoise);
    for m in [
        SimplexMethod::Det(Det::new()),
        SimplexMethod::Mn(MaxNoise::with_k(2.0)),
        SimplexMethod::Pc(PointComparison::new()),
    ] {
        let res = m.run(
            &obj,
            vec![vec![3.0], vec![-1.0]],
            Termination::tolerance(1e-12),
            TimeMode::Parallel,
            1,
        );
        assert!(
            q.value(&res.best_point) < 1e-6,
            "{} got {:?}",
            m.name(),
            res.best_point
        );
    }
}

#[test]
fn mckinnon_counterexample_terminates_and_makes_progress() {
    // The classic surface where NM can converge to a non-stationary point;
    // we only require graceful termination and descent from the start.
    let mk = McKinnon::default();
    let obj = Noisy::new(mk, ZeroNoise);
    let init = vec![vec![1.0, 1.0], vec![0.8, 0.6], vec![0.9, 0.9]];
    let start_best = init
        .iter()
        .map(|p| mk.value(p))
        .fold(f64::INFINITY, f64::min);
    let res = Det::new().run(
        &obj,
        init,
        Termination::tolerance(1e-10),
        TimeMode::Parallel,
        1,
    );
    assert!(mk.value(&res.best_point) < start_best);
    assert!(res.iterations < 1_000_000);
}

#[test]
fn relative_noise_model_is_handled() {
    // Noise scaling with |f|: large values are very noisy, the basin quiet.
    let sphere = Sphere::new(3);
    let obj = Noisy::new(
        sphere,
        RelativeNoise {
            fraction: 0.3,
            floor: 0.01,
        },
    );
    // A single start can stall when the whole trajectory stays in the
    // high-|f| (hence high-noise) region and the time budget drains into
    // resampling; that is expected MN behaviour, not a defect. Assert the
    // median of three independent starts instead of one arbitrary seed.
    let mut finals: Vec<f64> = (0..3u64)
        .map(|seed| {
            let init = init::random_uniform(3, -5.0, 5.0, seed);
            let res = MaxNoise::with_k(2.0).run(
                &obj,
                init,
                Termination {
                    tolerance: Some(1e-4),
                    max_time: Some(5e4),
                    max_iterations: Some(5_000),
                },
                TimeMode::Parallel,
                seed,
            );
            sphere.value(&res.best_point)
        })
        .collect();
    finals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(finals[1] < 1.0, "median of 3 starts: {finals:?}");
}

#[test]
fn extended_suite_is_solvable_noise_free() {
    let term = Termination::tolerance(1e-13);
    // Unimodal members of the extended suite must be solved exactly.
    let z = Zakharov::new(3);
    let res = Det::new().run(
        &Noisy::new(z, ZeroNoise),
        init::random_uniform(3, -2.0, 2.0, 3),
        term,
        TimeMode::Parallel,
        3,
    );
    assert!(
        z.value(&res.best_point) < 1e-6,
        "Zakharov: {}",
        z.value(&res.best_point)
    );

    let q = IllConditionedQuadratic::new(4, 1e4);
    let res = Det::new().run(
        &Noisy::new(IllConditionedQuadratic::new(4, 1e4), ZeroNoise),
        init::random_uniform(4, -2.0, 2.0, 4),
        term,
        TimeMode::Parallel,
        4,
    );
    assert!(
        q.value(&res.best_point) < 1e-4,
        "ill-conditioned: {}",
        q.value(&res.best_point)
    );
}

#[test]
fn multimodal_suite_favours_global_strategies() {
    // Ackley/Griewank/Levy from a wide box: restarting MN should do at
    // least as well as a single MN run under the same budget, and PSO+MN
    // should find a deep basin.
    let term = Termination {
        tolerance: Some(1e-8),
        max_time: Some(2e4),
        max_iterations: Some(5_000),
    };
    let ackley = Ackley::new(2);
    let obj = Noisy::new(ackley, ConstantNoise(0.1));
    let single = MaxNoise::with_k(2.0).run(
        &obj,
        init::random_uniform(2, -20.0, 20.0, 5),
        term,
        TimeMode::Parallel,
        5,
    );
    let multi = RestartedSimplex::new(SimplexMethod::Mn(MaxNoise::with_k(2.0)), -20.0, 20.0).run(
        &obj,
        term,
        TimeMode::Parallel,
        5,
    );
    // Restarting must reach a deep basin even when a single run from the
    // same budget can strand on a shoulder, and must be no worse than the
    // single run beyond noise scale (sd = 0.1; comparing two near-optimal
    // noisy outcomes at 1e-9 slack would be a coin flip).
    assert!(
        ackley.value(&multi.best_point) < 1.0,
        "multistart stranded at {}",
        ackley.value(&multi.best_point)
    );
    assert!(ackley.value(&multi.best_point) <= ackley.value(&single.best_point) + 0.1);

    let levy = Levy::new(2);
    let obj = Noisy::new(levy, ConstantNoise(0.1));
    let hybrid = PsoSimplex::new(
        Pso::in_box(-10.0, 10.0),
        SimplexMethod::Mn(MaxNoise::with_k(2.0)),
    )
    .run(&obj, term, TimeMode::Parallel, 6);
    assert!(
        levy.value(&hybrid.best_point) < 2.0,
        "Levy: {}",
        levy.value(&hybrid.best_point)
    );

    let grie = Griewank::new(2);
    let obj = Noisy::new(grie, ConstantNoise(0.05));
    let hybrid = PsoSimplex::new(
        Pso::in_box(-50.0, 50.0),
        SimplexMethod::Pc(PointComparison::new()),
    )
    .run(&obj, term, TimeMode::Parallel, 7);
    assert!(
        grie.value(&hybrid.best_point) < 1.0,
        "Griewank: {}",
        grie.value(&hybrid.best_point)
    );
}

#[test]
fn explicit_initial_simplex_is_respected() {
    // The paper insists initial vertices are user-provided, not automated:
    // verify an explicit simplex is used verbatim (iteration 0 ordering
    // reflects it).
    let sphere = Sphere::new(2);
    let obj = Noisy::new(sphere, ZeroNoise);
    let init = noisy_simplex::init::explicit(vec![vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1]]);
    let res = Det::new().run(
        &obj,
        init,
        Termination {
            tolerance: None,
            max_time: None,
            max_iterations: Some(1),
        },
        TimeMode::Parallel,
        1,
    );
    // After a single iteration the simplex must still be near the corner.
    assert!(res.best_point.iter().all(|&x| x > 4.0));
}

#[test]
fn empirical_error_mode_optimizes_comparably() {
    // PC with batch-estimated (non-oracle) error bars still solves a noisy
    // quadratic — the DESIGN.md oracle-vs-empirical ablation's quality leg.
    let sphere = Sphere::new(2);
    let obj = Noisy::empirical(sphere, ConstantNoise(5.0), 1.0);
    let res = PointComparison::new().run(
        &obj,
        init::random_uniform(2, -5.0, 5.0, 8),
        Termination {
            tolerance: Some(1e-3),
            max_time: Some(5e4),
            max_iterations: Some(5_000),
        },
        TimeMode::Parallel,
        8,
    );
    assert!(
        sphere.value(&res.best_point) < 2.0,
        "empirical-mode PC got {}",
        sphere.value(&res.best_point)
    );
}

#[test]
fn adaptive_coefficients_are_competitive_in_higher_dimensions() {
    // Gao–Han coefficients vs the classical (1, 0.5, 2) on noise-free
    // Rosenbrock d = 10 under an iteration budget: adaptive should reach a
    // value within an order of magnitude (usually far better).
    use stoch_eval::functions::Rosenbrock;
    let d = 10;
    let rosen = Rosenbrock::new(d);
    let obj = Noisy::new(rosen, ZeroNoise);
    let term = Termination {
        tolerance: Some(1e-14),
        max_time: None,
        max_iterations: Some(4_000),
    };
    let mut classical_log = 0.0;
    let mut adaptive_log = 0.0;
    for s in 0..3u64 {
        let init = init::random_uniform(d, -2.0, 2.0, 100 + s);
        let classical = Det::new().run(&obj, init.clone(), term, TimeMode::Parallel, s);
        let adaptive = Det {
            cfg: SimplexConfig {
                coefficients: Coefficients::adaptive(d),
                continuous: false,
                ..SimplexConfig::default()
            },
        }
        .run(&obj, init, term, TimeMode::Parallel, s);
        classical_log += rosen.value(&classical.best_point).max(1e-14).log10();
        adaptive_log += rosen.value(&adaptive.best_point).max(1e-14).log10();
    }
    assert!(
        adaptive_log <= classical_log + 3.0,
        "adaptive {adaptive_log} vs classical {classical_log} (sum log10 over 3 seeds)"
    );
}

#[test]
fn anderson_structure_search_runs_on_noisy_surface() {
    let sphere = Sphere::new(3);
    let obj = Noisy::new(sphere, ConstantNoise(1.0));
    let init = init::random_uniform(3, 1.0, 4.0, 9);
    let start_best = init
        .iter()
        .map(|p| sphere.value(p))
        .fold(f64::INFINITY, f64::min);
    let res = AndersonSearch {
        cfg: SimplexConfig::default(),
        params: AndersonParams { k1: 64.0, k2: 0.0 },
    }
    .run(
        &obj,
        init,
        Termination {
            tolerance: Some(1e-4),
            max_time: Some(3e4),
            max_iterations: Some(2_000),
        },
        TimeMode::Parallel,
        9,
    );
    assert!(sphere.value(&res.best_point) < start_best);
}
