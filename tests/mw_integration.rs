//! Integration tests for the MW deployment: the optimizers run unchanged
//! over the worker pool, and the scale-up machinery produces consistent
//! accounting.

use mw_framework::{Allocation, MwObjective, MwPool};
use noisy_simplex::prelude::*;
use repro_bench::scaleup::scaleup_rosenbrock;
use std::sync::Arc;
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::Objective;
use stoch_eval::sampler::Noisy;

#[test]
fn every_method_runs_over_the_mw_pool() {
    let pool = Arc::new(MwPool::new(3));
    let obj = MwObjective::new(
        Noisy::new(Rosenbrock::new(2), ConstantNoise(5.0)),
        Arc::clone(&pool),
    );
    let term = Termination {
        tolerance: Some(1e-3),
        max_time: Some(5e3),
        max_iterations: Some(500),
    };
    let methods = [
        SimplexMethod::Det(Det::new()),
        SimplexMethod::Mn(MaxNoise::with_k(2.0)),
        SimplexMethod::Pc(PointComparison::new()),
        SimplexMethod::PcMn(PcMn::new()),
        SimplexMethod::Anderson(AndersonNm::with_k1(256.0)),
    ];
    for (i, m) in methods.iter().enumerate() {
        let init = init::random_uniform(2, -3.0, 3.0, i as u64);
        let res = m.run(&obj, init, term, TimeMode::Parallel, i as u64);
        assert!(res.iterations > 0, "{} made no progress over MW", m.name());
    }
    let jobs: u64 = pool.job_counts().iter().sum();
    assert!(jobs > 100, "pool executed only {jobs} jobs");
}

#[test]
fn mw_runs_are_reproducible_despite_threading() {
    // The pool executes sampling on arbitrary workers, but seeds determine
    // the streams completely: two identical deployments must agree exactly.
    let run = || {
        let pool = Arc::new(MwPool::new(4));
        let obj = MwObjective::new(Noisy::new(Rosenbrock::new(3), ConstantNoise(50.0)), pool);
        let init = init::random_uniform(3, -6.0, 3.0, 9);
        MaxNoise::with_k(2.0).run(
            &obj,
            init,
            Termination {
                tolerance: None,
                max_time: None,
                max_iterations: Some(40),
            },
            TimeMode::Parallel,
            13,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_point, b.best_point);
    assert_eq!(a.best_observed, b.best_observed);
    assert_eq!(a.elapsed, b.elapsed);
}

#[test]
fn scaleup_descends_and_accounts_processors() {
    let res = scaleup_rosenbrock(20, 2, 0.2, 1.0, 200, 1e-9, 5);
    assert_eq!(res.alloc, Allocation::new(20, 2));
    assert_eq!(res.alloc.total(), 20 * 2 + 3 * 2 + 2 * 20 + 7);
    assert!(res.steps > 0 && res.steps <= 200);
    let first = res.trace.first().unwrap().best_value;
    let last = res.trace.last().unwrap().best_value;
    assert!(last < first, "no descent over MW: {first} -> {last}");
    assert!(res.secs_per_step > 0.0);
}

#[test]
fn scaleup_step_cost_grows_mildly_with_dimension() {
    // Fig 3.18c shape: per-step cost grows with d, but sublinearly relative
    // to the 5x dimension jump (the paper calls it "minor").
    let small = scaleup_rosenbrock(10, 1, 0.2, 1.0, 150, 1e-12, 6);
    let large = scaleup_rosenbrock(50, 1, 0.2, 1.0, 150, 1e-12, 6);
    assert!(
        large.secs_per_step < small.secs_per_step * 50.0,
        "per-step cost exploded: {} -> {}",
        small.secs_per_step,
        large.secs_per_step
    );
}

#[test]
fn manual_master_worker_simplex_over_the_comm_layer() {
    // Drive one full DET optimization where every evaluation crosses the
    // MWRMComm-style message layer as packed bytes: master (rank 0) ships
    // points to two workers, workers evaluate Rosenbrock and ship values
    // back. Exercises pack/unpack/send/recv end to end.
    use mw_framework::comm::network;
    use noisy_simplex::geometry::{centroid_excluding, contract, expand, order, reflect};

    const TAG_POINT: u32 = 1;
    const TAG_VALUE: u32 = 2;
    const TAG_STOP: u32 = 3;

    let mut eps = network(2);
    let w1 = eps.pop().unwrap();
    let mut master = eps.pop().unwrap();

    let worker = |mut ep: mw_framework::comm::Endpoint| {
        std::thread::spawn(move || loop {
            // A stop message carries an empty point.
            let (_, x): (usize, Vec<f64>) = match ep.recv(Some(0), None) {
                Ok(v) => v,
                Err(_) => return,
            };
            if x.is_empty() {
                return;
            }
            let f = Rosenbrock::new(2).value(&x);
            ep.send(0, TAG_VALUE, &f).unwrap();
        })
    };
    let h1 = worker(w1);

    let eval = |master: &mut mw_framework::comm::Endpoint, x: &[f64]| -> f64 {
        master.send(1, TAG_POINT, &x.to_vec()).unwrap();
        let (_, f): (usize, f64) = master.recv(Some(1), Some(TAG_VALUE)).unwrap();
        f
    };

    let mut points = noisy_simplex::init::random_uniform(2, -2.0, 2.0, 3);
    let mut values: Vec<f64> = points.iter().map(|p| eval(&mut master, p)).collect();
    for _ in 0..200 {
        let ord = order(&values);
        if values[ord.max] - values[ord.min] < 1e-10 {
            break;
        }
        let cent = centroid_excluding(&points, ord.max);
        let refl = reflect(&cent, &points[ord.max], 1.0);
        let f_ref = eval(&mut master, &refl);
        if f_ref < values[ord.min] {
            let exp = expand(&cent, &refl, 2.0);
            let f_exp = eval(&mut master, &exp);
            if f_exp < f_ref {
                points[ord.max] = exp;
                values[ord.max] = f_exp;
            } else {
                points[ord.max] = refl;
                values[ord.max] = f_ref;
            }
        } else if f_ref < values[ord.max] {
            points[ord.max] = refl;
            values[ord.max] = f_ref;
        } else {
            let con = contract(&cent, &points[ord.max], 0.5);
            let f_con = eval(&mut master, &con);
            if f_con < values[ord.max] {
                points[ord.max] = con;
                values[ord.max] = f_con;
            } else {
                let keep = points[ord.min].clone();
                for (i, p) in points.iter_mut().enumerate() {
                    if i == ord.min {
                        continue;
                    }
                    for (pj, kj) in p.iter_mut().zip(&keep) {
                        *pj = 0.5 * *pj + 0.5 * kj;
                    }
                }
                for (i, p) in points.clone().iter().enumerate() {
                    if i != ord.min {
                        values[i] = eval(&mut master, p);
                    }
                }
            }
        }
    }
    let best = values.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(best < 1e-3, "comm-layer simplex reached only {best}");
    master.send(1, TAG_STOP, &Vec::<f64>::new()).unwrap();
    h1.join().unwrap();
}

#[test]
fn mw_objective_reports_true_values() {
    let pool = Arc::new(MwPool::new(1));
    let inner = Noisy::new(Rosenbrock::new(2), ConstantNoise(1.0));
    let obj = MwObjective::new(inner, pool);
    use stoch_eval::objective::StochasticObjective;
    let x = [0.3, 0.7];
    assert_eq!(obj.true_value(&x), Some(Rosenbrock::new(2).value(&x)));
}
