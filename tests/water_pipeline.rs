//! Integration tests for the water-parameterization application (§3.5):
//! surrogate optimization reproduces the paper's story, and the real MD
//! engine plugs into the same objective interface.

use noisy_simplex::prelude::*;
use stoch_eval::objective::{SampleStream, StochasticObjective};
use water_md::cost::{CostWeights, MdWaterObjective, WaterObjective};
use water_md::reference::{paper_final_params, INITIAL_VERTICES};
use water_md::simulate::MdConfig;
use water_md::surrogate::SurrogateWater;

fn init4() -> Vec<Vec<f64>> {
    INITIAL_VERTICES[..4].iter().map(|v| v.to_vec()).collect()
}

fn term() -> Termination {
    Termination {
        tolerance: Some(1e-4),
        max_time: Some(2e5),
        max_iterations: Some(10_000),
    }
}

#[test]
fn optimizers_land_near_tip4p_and_beat_its_cost() {
    // Table 3.4 shape: all three stochastic algorithms converge from the
    // poor initial vertices to parameters close to published TIP4P, with a
    // cost slightly better than TIP4P's own.
    let obj = WaterObjective::new(SurrogateWater);
    let tip4p_cost = obj.true_cost(&[0.1550, 3.1540, 0.5200]);
    let methods: [(&str, SimplexMethod); 3] = [
        ("MN", SimplexMethod::Mn(MaxNoise::with_k(2.0))),
        ("PC", SimplexMethod::Pc(PointComparison::new())),
        ("PC+MN", SimplexMethod::PcMn(PcMn::new())),
    ];
    for (name, m) in methods {
        let res = m.run(&obj, init4(), term(), TimeMode::Parallel, 11);
        let p = &res.best_point;
        let [e, s, q] = [p[0], p[1], p[2]];
        assert!(
            (e - 0.155).abs() < 0.02,
            "{name}: epsilon {e} far from TIP4P"
        );
        assert!((s - 3.154).abs() < 0.08, "{name}: sigma {s} far from TIP4P");
        assert!((q - 0.520).abs() < 0.02, "{name}: q_H {q} far from TIP4P");
        let cost = obj.true_cost(&[e, s, q]);
        assert!(
            cost < tip4p_cost,
            "{name}: cost {cost} should beat TIP4P's {tip4p_cost}"
        );
        // Within striking distance of the paper's reported finals.
        let paper = paper_final_params::PC;
        assert!((s - paper[1]).abs() < 0.1);
    }
}

#[test]
fn diffusion_improves_towards_experiment() {
    // Paper: D improves from TIP4P's 3.29 to ~3.0-3.1 (experiment 2.27).
    let obj = WaterObjective::new(SurrogateWater);
    let res =
        SimplexMethod::Mn(MaxNoise::with_k(2.0)).run(&obj, init4(), term(), TimeMode::Parallel, 11);
    let p = obj.true_properties(&[res.best_point[0], res.best_point[1], res.best_point[2]]);
    let d = p[water_md::surrogate::prop::D];
    assert!(
        d < 3.29 && d > 2.27,
        "optimized D = {d} should lie between TIP4P (3.29) and experiment (2.27)"
    );
}

#[test]
fn noise_free_and_noisy_optimizations_agree_roughly() {
    let noiseless = WaterObjective::noiseless(SurrogateWater);
    let noisy = WaterObjective::new(SurrogateWater);
    let a = Det::new().run(
        &noiseless,
        init4(),
        Termination::tolerance(1e-10),
        TimeMode::Parallel,
        1,
    );
    let b = PcMn::new().run(&noisy, init4(), term(), TimeMode::Parallel, 2);
    for i in 0..3 {
        assert!(
            (a.best_point[i] - b.best_point[i]).abs() < 0.08,
            "coordinate {i}: {} vs {}",
            a.best_point[i],
            b.best_point[i]
        );
    }
}

#[test]
fn md_objective_stream_accumulates_replicas() {
    // Full-fidelity path: each extend runs one real (tiny) MD replica.
    let obj = MdWaterObjective {
        cfg: MdConfig {
            n_side: 2,
            equil_steps: 60,
            prod_steps: 120,
            sample_every: 10,
            ..MdConfig::default()
        },
        weights: CostWeights::default(),
    };
    let mut stream = obj.open(&[0.1550, 3.1540, 0.5200], 3);
    assert!(stream.estimate().std_err.is_infinite());
    stream.extend(1.0);
    stream.extend(1.0);
    stream.extend(1.0);
    let e = stream.estimate();
    assert!(e.value.is_finite(), "cost estimate {:?}", e);
    assert!(e.std_err.is_finite() && e.std_err > 0.0);
    assert_eq!(e.time, 3.0);
}

#[test]
fn goo_curve_improves_over_the_optimization() {
    // Fig 3.20 shape: the RMS distance of the model gOO to experiment
    // shrinks from the initial vertices to the optimized model.
    let obj = WaterObjective::new(SurrogateWater);
    let res =
        SimplexMethod::Mn(MaxNoise::with_k(2.0)).run(&obj, init4(), term(), TimeMode::Parallel, 11);
    let rms = |p: [f64; 3]| -> f64 {
        let mut ss = 0.0;
        let n = 80;
        for i in 0..n {
            let r = 2.2 + i as f64 * 0.07;
            let d = SurrogateWater.g_oo_curve(&p, r) - water_md::reference::Experiment::g_oo(r);
            ss += d * d;
        }
        (ss / n as f64).sqrt()
    };
    let initial = INITIAL_VERTICES[3];
    let final_p = [res.best_point[0], res.best_point[1], res.best_point[2]];
    assert!(
        rms(final_p) < rms(initial) / 3.0,
        "final RMS {} vs initial {}",
        rms(final_p),
        rms(initial)
    );
}
