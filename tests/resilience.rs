//! Service-level resilience (DESIGN.md §16): straggler hedging must be
//! invisible in the results.
//!
//! Hedging speculatively re-dispatches a slow in-flight job to a second
//! worker and takes the first answer. Because a retry (and therefore a
//! hedge) re-ships the *same* stream clone — RNG state and all — the winner
//! of the race cannot change a single bit of the run: only its tail
//! latency. The property below forces every winner permutation the race
//! admits (primary wins, hedge wins, primary's worker straggles, the other
//! worker straggles) and checks each of the four paper drivers stays
//! `f64::to_bits`-identical to a serial run.

use mw_framework::resilience::HedgePolicy;
use mw_framework::{FaultPlan, RetryPolicy, ThreadedBackend};
use noisy_simplex::config::{BackendChoice, SimplexConfig, TransportChoice};
use noisy_simplex::result::RunResult;
use noisy_simplex::session::{Driver, RunSession};
use noisy_simplex::termination::Termination;
use proptest::prelude::*;
use std::sync::Arc;
use stoch_eval::backend::SamplingBackend;
use stoch_eval::clock::TimeMode;
use stoch_eval::functions::Rosenbrock;
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::StochasticObjective;
use stoch_eval::sampler::Noisy;

fn serial_cfg() -> SimplexConfig {
    SimplexConfig {
        backend: BackendChoice::Serial,
        transport: TransportChoice::Inproc,
        ..SimplexConfig::default()
    }
}

fn term(iters: u64) -> Termination {
    Termination {
        tolerance: None,
        max_time: None,
        max_iterations: Some(iters),
    }
}

fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.best_point, b.best_point, "{label}: best_point");
    assert_eq!(
        a.best_observed.to_bits(),
        b.best_observed.to_bits(),
        "{label}: best_observed"
    );
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits(), "{label}: elapsed");
    assert_eq!(
        a.total_sampling.to_bits(),
        b.total_sampling.to_bits(),
        "{label}: total_sampling"
    );
    assert_eq!(a.stop, b.stop, "{label}: stop reason");
    assert_eq!(
        a.trace.points().len(),
        b.trace.points().len(),
        "{label}: trace length"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Every hedge-race winner permutation yields serial bits: whichever of
    /// the two workers is the straggler (`slow_worker`), however long it
    /// lags (`delay_ms`), and wherever the simplex wanders (`seed`), each
    /// driver's hedged run matches its serial baseline exactly.
    #[test]
    fn hedge_race_winner_never_changes_result_bits(
        slow_worker in 0usize..2,
        delay_ms in 8u64..28,
        seed in 1u64..10_000,
    ) {
        let obj = Noisy::new(Rosenbrock::new(2), ConstantNoise(3.0));
        let init = noisy_simplex::init::random_uniform(2, -3.0, 3.0, seed);
        let drivers = [
            Driver::Det,
            Driver::Mn(Default::default()),
            Driver::Pc(Default::default()),
            Driver::PcMn(Default::default(), Default::default()),
        ];
        // Aggressive policy so hedges actually launch inside a short run;
        // whether each race is won by the primary or the hedge is decided
        // by wall-clock scheduling — exactly the nondeterminism the
        // determinism contract must absorb.
        let hedge = HedgePolicy::parse("on:q=0.5:factor=1:min_ms=2:warmup=4").unwrap();
        for driver in drivers {
            let serial = RunSession::new(
                &obj,
                init.clone(),
                serial_cfg(),
                term(10),
                TimeMode::Parallel,
                seed,
                driver,
            )
            .run_to_completion();

            let backend = ThreadedBackend::with_options(
                2,
                FaultPlan::none().delay(slow_worker, 0, delay_ms),
                RetryPolicy::default(),
                4,
                None,
            )
            .with_hedge(hedge);
            let hedged = RunSession::with_backend(
                &obj,
                init.clone(),
                serial_cfg(),
                term(10),
                TimeMode::Parallel,
                seed,
                driver,
                Arc::new(backend)
                    as Arc<dyn SamplingBackend<<Noisy<Rosenbrock, ConstantNoise> as StochasticObjective>::Stream>>,
            )
            .run_to_completion();

            assert_identical(
                &format!("driver {driver:?}, slow worker {slow_worker}, {delay_ms} ms"),
                &serial,
                &hedged,
            );
        }
    }
}
