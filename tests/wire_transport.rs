//! Distributed transport (DESIGN.md §12): the wire between master and
//! worker processes must be *corruption-evident* and *result-invisible*.
//!
//! Corruption-evident: any damaged byte stream — truncated, bit-flipped,
//! duplicated, reordered — surfaces as a typed condition (a pending partial
//! frame, [`TransportError::Corrupt`], a stale result), never as a silently
//! wrong sample. Result-invisible: running any simplex-family method over
//! `NSX_TRANSPORT=process` is `f64::to_bits`-identical to in-process
//! execution, under network chaos, and composed with checkpoint/resume.

use mw_framework::transport::{
    channel_pair, Frame, FrameKind, SocketTransport, Transport, TransportError,
};
use noisy_simplex::prelude::*;
use proptest::prelude::*;
use std::io::Write as IoWrite;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Duration;
use stoch_eval::functions::{Rosenbrock, Sphere};
use stoch_eval::noise::ConstantNoise;
use stoch_eval::objective::StochasticObjective;
use stoch_eval::sampler::Noisy;

// ---------------------------------------------------------------------------
// Wire-level corruption properties
// ---------------------------------------------------------------------------

const KINDS: [FrameKind; 7] = [
    FrameKind::Hello,
    FrameKind::Job,
    FrameKind::Result,
    FrameKind::Error,
    FrameKind::Shutdown,
    FrameKind::Ping,
    FrameKind::Pong,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary frames cross both transports intact, in order.
    #[test]
    fn frames_survive_both_transports(
        kind_idx in 0usize..KINDS.len(),
        seq in 0u64..=u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let frame = Frame::new(KINDS[kind_idx], seq, payload);

        let (mut a, mut b) = channel_pair();
        a.send(&frame).unwrap();
        prop_assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap(),
            frame.clone()
        );

        let (x, y) = UnixStream::pair().unwrap();
        let (mut x, mut y) = (
            SocketTransport::new(x).unwrap(),
            SocketTransport::new(y).unwrap(),
        );
        x.send(&frame).unwrap();
        prop_assert_eq!(
            y.recv_timeout(Duration::from_secs(1)).unwrap().unwrap(),
            frame
        );
    }

    /// Streaming reassembly is boundary-blind: however a sequence of frames
    /// is sliced into chunks — mid-header, mid-payload, mid-CRC, several
    /// frames coalesced into one read — [`FrameBuffer`] yields exactly the
    /// original frames in order, with nothing left pending.
    #[test]
    fn frame_buffer_reassembles_across_arbitrary_chunk_boundaries(
        specs in proptest::collection::vec((0usize..KINDS.len(), 0u64..=u64::MAX, 0usize..96), 1..6),
        cut_fracs in proptest::collection::vec(0.0f64..1.0, 0..24),
    ) {
        use mw_framework::transport::FrameBuffer;
        // Payload bytes derived from the seq so the strategy stays flat
        // (kind, seq, len) while payload content still varies per frame.
        let frames: Vec<Frame> = specs
            .iter()
            .map(|&(k, seq, len)| {
                let payload = (0..len).map(|i| (seq ^ i as u64) as u8).collect();
                Frame::new(KINDS[k], seq, payload)
            })
            .collect();
        let bytes: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();

        // Arbitrary chunking: cut positions anywhere in the byte stream.
        let mut cuts: Vec<usize> = cut_fracs
            .iter()
            .map(|f| (f * bytes.len() as f64) as usize)
            .collect();
        cuts.push(0);
        cuts.push(bytes.len());
        cuts.sort_unstable();
        cuts.dedup();

        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for pair in cuts.windows(2) {
            fb.extend(&bytes[pair[0]..pair[1]]);
            while let Some(frame) = fb.try_frame().unwrap() {
                got.push(frame);
            }
        }
        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(fb.pending_bytes(), 0);

        // Degenerate chunking: one byte at a time.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for b in &bytes {
            fb.extend(std::slice::from_ref(b));
            while let Some(frame) = fb.try_frame().unwrap() {
                got.push(frame);
            }
        }
        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(fb.pending_bytes(), 0);
    }

    /// A truncated byte stream never yields a frame: the tail stays pending
    /// until the peer hangs up, which reports `Closed` — the master then
    /// re-dispatches from its backups.
    #[test]
    fn truncated_streams_never_yield_a_frame(
        seq in 0u64..=u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 1..256),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = Frame::new(FrameKind::Result, seq, payload).encode();
        // Cut strictly inside the frame.
        let cut = 1 + ((bytes.len() - 2) as f64 * cut_frac) as usize;

        let (raw, peer) = UnixStream::pair().unwrap();
        let mut transport = SocketTransport::new(peer).unwrap();
        let mut raw = raw;
        raw.write_all(&bytes[..cut]).unwrap();
        prop_assert_eq!(
            transport.recv_timeout(Duration::from_millis(5)).unwrap(),
            None
        );
        drop(raw);
        prop_assert_eq!(
            transport.recv_timeout(Duration::from_millis(50)),
            Err(TransportError::Closed)
        );
    }

    /// A single flipped bit anywhere in a frame is never accepted: the
    /// receiver reports a typed corruption error, or keeps waiting for
    /// bytes that never come (a length-field flip) — but no frame comes out.
    #[test]
    fn bit_flips_never_produce_a_frame(
        seq in 0u64..=u64::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..128),
        flip_frac in 0.0f64..1.0,
        flip_bit in 0usize..8,
    ) {
        let mut bytes = Frame::new(FrameKind::Job, seq, payload).encode();
        let pos = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[pos] ^= 1 << flip_bit;

        let (raw, peer) = UnixStream::pair().unwrap();
        let mut transport = SocketTransport::new(peer).unwrap();
        let mut raw = raw;
        raw.write_all(&bytes).unwrap();
        drop(raw);
        let got = transport.recv_timeout(Duration::from_millis(50));
        prop_assert!(
            matches!(got, Err(TransportError::Corrupt(_)) | Err(TransportError::Closed) | Ok(None)),
            "flipped bit {flip_bit} at byte {pos} produced {got:?}"
        );
    }
}

/// A duplicated `Job` frame is executed twice and answered twice with the
/// same seq — duplicate *suppression* is the master pool's job (the second
/// result is stale), not the worker's, which keeps the worker stateless.
#[test]
fn duplicated_job_frames_are_answered_per_copy() {
    use mw_framework::transport::worker::serve;
    use mw_framework::WorkerFault;
    use stoch_eval::codec::Writer;
    use stoch_eval::objective::SampleStream;
    use stoch_eval::sampler::GaussianStream;

    let (mut master, worker) = channel_pair();
    let t = std::thread::spawn(move || serve(worker, WorkerFault::default()));

    let stream = GaussianStream::new(1.0, 2.0, 99);
    let mut w = Writer::new();
    stream.save_state(&mut w).unwrap();
    let payload = mw_framework::transport::wire::encode_job("gaussian.v1", 0, 1.5, &w.into_bytes());
    let job = Frame::new(FrameKind::Job, 5, payload);

    // Hello first, then the same job twice.
    let hello = master
        .recv_timeout(Duration::from_secs(5))
        .unwrap()
        .unwrap();
    assert_eq!(hello.kind, FrameKind::Hello);
    master.send(&job).unwrap();
    master.send(&job).unwrap();
    let first = master
        .recv_timeout(Duration::from_secs(5))
        .unwrap()
        .unwrap();
    let second = master
        .recv_timeout(Duration::from_secs(5))
        .unwrap()
        .unwrap();
    assert_eq!(first.kind, FrameKind::Result);
    assert_eq!(first.seq, 5);
    // Same deterministic job → bit-identical duplicate answer.
    assert_eq!(second, first);
    master
        .send(&Frame::new(FrameKind::Shutdown, 0, vec![]))
        .unwrap();
    assert_eq!(t.join().unwrap(), 0);
}

// ---------------------------------------------------------------------------
// Engine-level determinism across the wire
// ---------------------------------------------------------------------------

fn term() -> Termination {
    Termination {
        tolerance: Some(1e-6),
        max_time: Some(300.0),
        max_iterations: Some(60),
    }
}

fn methods() -> Vec<SimplexMethod> {
    vec![
        SimplexMethod::Det(Det::new()),
        SimplexMethod::Mn(MaxNoise::with_k(2.0)),
        SimplexMethod::Pc(PointComparison::new()),
        SimplexMethod::PcMn(PcMn::new()),
    ]
}

fn with_cfg(m: &SimplexMethod, f: impl FnOnce(&mut SimplexConfig)) -> SimplexMethod {
    let mut m = m.clone();
    match &mut m {
        SimplexMethod::Det(x) => f(&mut x.cfg),
        SimplexMethod::Mn(x) => f(&mut x.cfg),
        SimplexMethod::Pc(x) => f(&mut x.cfg),
        SimplexMethod::PcMn(x) => f(&mut x.cfg),
        SimplexMethod::Anderson(x) => f(&mut x.cfg),
    }
    m
}

fn assert_identical(label: &str, a: &RunResult, b: &RunResult) {
    let bits = |v: f64| v.to_bits();
    assert_eq!(a.best_point, b.best_point, "{label}: best_point");
    assert_eq!(
        bits(a.best_observed),
        bits(b.best_observed),
        "{label}: best_observed"
    );
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(bits(a.elapsed), bits(b.elapsed), "{label}: elapsed");
    assert_eq!(
        bits(a.total_sampling),
        bits(b.total_sampling),
        "{label}: total_sampling"
    );
    assert_eq!(a.stop, b.stop, "{label}: stop reason");
    let (pa, pb) = (a.trace.points(), b.trace.points());
    assert_eq!(pa.len(), pb.len(), "{label}: trace length");
    for (i, (x, y)) in pa.iter().zip(pb).enumerate() {
        assert_eq!(bits(x.time), bits(y.time), "{label}: trace[{i}].time");
        assert_eq!(
            bits(x.best_observed),
            bits(y.best_observed),
            "{label}: trace[{i}].best_observed"
        );
        assert_eq!(x.step, y.step, "{label}: trace[{i}].step");
    }
}

fn check_process_matches_serial<F: StochasticObjective>(
    objective: &F,
    d: usize,
    seed: u64,
    faults: Option<FaultPlan>,
) {
    let init = init::random_uniform(d, -3.0, 3.0, seed);
    for m in &methods() {
        let serial = with_cfg(m, |c| {
            c.transport = TransportChoice::Inproc;
            c.backend = BackendChoice::Serial;
        });
        let wired = with_cfg(m, |c| {
            c.transport = TransportChoice::Process;
            c.backend = BackendChoice::Threaded { workers: 2 };
            c.faults = faults.clone();
            if faults.is_some() {
                c.retry = RetryPolicy {
                    max_attempts: 5,
                    timeout: Some(Duration::from_millis(500)),
                    backoff: Duration::ZERO,
                };
            }
        });
        let ra = serial.run(objective, init.clone(), term(), TimeMode::Parallel, seed);
        let rb = wired.run(objective, init.clone(), term(), TimeMode::Parallel, seed);
        let label = format!("{} over process transport", m.name());
        assert_identical(&label, &ra, &rb);
        assert!(
            !rb.notes.contains(&RunNote::TransportDegraded)
                && !rb.notes.contains(&RunNote::DegradedToSerial),
            "{label}: survivable conditions must not degrade the run, got {:?}",
            rb.notes
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Clean wire: every method, oracle streams.
    #[test]
    fn process_transport_matches_serial_on_oracle_streams(seed in 1u64..10_000) {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        check_process_matches_serial(&obj, 2, seed, None);
    }

    /// Clean wire: every method, empirical streams (batch statistics cross
    /// the wire too).
    #[test]
    fn process_transport_matches_serial_on_empirical_streams(seed in 1u64..10_000) {
        let obj = Noisy::empirical(Rosenbrock::new(3), ConstantNoise(2.0), 0.25);
        check_process_matches_serial(&obj, 3, seed, None);
    }

    /// Network chaos: a worker killed mid-run, an outbound frame dropped,
    /// another delayed, two reordered — all survivable, all invisible in
    /// the results.
    #[test]
    fn process_transport_survives_network_chaos(seed in 1u64..10_000) {
        let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
        let plan = FaultPlan::none()
            .kill(0, 2)
            .net_drop(1, 1)
            .net_delay(0, 0, 2)
            .reorder(1, 3);
        check_process_matches_serial(&obj, 2, seed, Some(plan));
    }
}

// ---------------------------------------------------------------------------
// Composition with checkpoint/resume (DESIGN.md §11 + §12)
// ---------------------------------------------------------------------------

fn tmp_ckpt(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
    std::env::temp_dir().join(format!("nsx_wire_{tag}_{}_{n}.bin", std::process::id()))
}

fn cleanup(path: &Path) {
    for suffix in ["", ".1", ".tmp"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
}

/// A run checkpointed and truncated *over the wire*, then resumed *over the
/// wire*, matches the uninterrupted in-process run bit for bit: snapshots
/// are transport-agnostic because the streams they persist are.
#[test]
fn checkpoint_resume_composes_with_process_transport() {
    let obj = Noisy::new(Sphere::new(2), ConstantNoise(1.0));
    let seed = 11;
    let init = init::random_uniform(2, -3.0, 3.0, seed);
    let base = SimplexMethod::Mn(MaxNoise::with_k(2.0));

    let golden_m = with_cfg(&base, |c| {
        c.transport = TransportChoice::Inproc;
        c.backend = BackendChoice::Serial;
    });
    let golden = golden_m.run(&obj, init.clone(), term(), TimeMode::Parallel, seed);
    assert!(golden.iterations > 4, "run too short to truncate");

    let path = tmp_ckpt("proc");
    let wired_m = with_cfg(&base, |c| {
        c.transport = TransportChoice::Process;
        c.backend = BackendChoice::Threaded { workers: 2 };
        c.checkpoint = Some(CheckpointConfig {
            path: path.clone(),
            every: 2,
            retain: true,
        });
    });
    let trunc_term = Termination {
        max_iterations: Some(4),
        ..term()
    };
    let truncated = wired_m.run(&obj, init, trunc_term, TimeMode::Parallel, seed);
    assert!(truncated.iterations <= 5, "truncated run overshot the cut");

    let resumed = wired_m
        .resume_with_metrics(&obj, &path, Some(term()), None)
        .unwrap_or_else(|e| panic!("resume over process transport failed: {e}"));
    cleanup(&path);

    assert_identical("mn checkpoint+wire", &golden, &resumed);
    // NoiseSuspect is a property of the sampled noise (it fires under an
    // NSX_NOISE chaos distribution), not of the wire, so it is the one note
    // a clean wired resume may carry.
    assert!(
        resumed.notes.iter().all(|n| *n == RunNote::NoiseSuspect),
        "clean wired resume must carry no transport notes, got {:?}",
        resumed.notes
    );
}
